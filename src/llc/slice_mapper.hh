/**
 * @file
 * Shared/private LLC slice selection (paper section 2.1, Fig 1).
 *
 * A memory-side LLC slice only caches lines of its memory
 * controller's partition; the *slice-within-MC* choice is what the
 * adaptive mechanism reconfigures:
 *
 *   shared  : slice-within-MC = hash of address bits. A line lives in
 *             exactly one slice; all SMs share it.
 *   private : slice-within-MC = requester's cluster id. Each cluster
 *             sees a private slice per MC that can cache the entire
 *             partition, so shared lines get replicated per cluster.
 *
 * Multi-program support (paper Fig 9): the mode is tracked per
 * application, so a shared-friendly and a private-friendly program can
 * co-execute with different views of the same physical slices.
 */

#ifndef AMSC_LLC_SLICE_MAPPER_HH
#define AMSC_LLC_SLICE_MAPPER_HH

#include <cstdint>
#include <vector>

#include "common/ckpt.hh"
#include "common/types.hh"
#include "mem/address_mapping.hh"

namespace amsc
{

/** LLC organization mode. */
enum class LlcMode
{
    Shared,
    Private,
};

/** Translates (line, cluster, app) to a global slice id. */
class SliceMapper
{
  public:
    /**
     * @param mapping  address mapping (owned by caller).
     * @param num_apps concurrently running applications (>=1).
     */
    SliceMapper(const AddressMapping &mapping, std::uint32_t num_apps);

    /** Set the LLC mode of application @p app. */
    void setMode(AppId app, LlcMode mode);

    /** Current LLC mode of application @p app. */
    LlcMode mode(AppId app = 0) const { return modes_[app]; }

    /** Global slice caching @p line_addr for @p cluster / @p app. */
    SliceId
    sliceFor(Addr line_addr, ClusterId cluster, AppId app = 0) const
    {
        const std::uint32_t spm = mapping_.params().slicesPerMc;
        const McId mc = mapping_.decode(line_addr).mc;
        const std::uint32_t local = modes_[app] == LlcMode::Shared
            ? mapping_.sliceWithinMc(line_addr)
            : cluster % spm;
        return mc * spm + local;
    }

    std::uint32_t numApps() const
    {
        return static_cast<std::uint32_t>(modes_.size());
    }

    const AddressMapping &mapping() const { return mapping_; }

    /** Serialize the per-application modes. */
    void saveCkpt(CkptWriter &w) const { ckptValue(w, modes_); }

    /** Restore state written by saveCkpt(). */
    void
    loadCkpt(CkptReader &r)
    {
        const std::size_t apps = modes_.size();
        ckptValue(r, modes_);
        if (modes_.size() != apps)
            r.fail("slice mapper app count mismatch");
        for (const LlcMode m : modes_) {
            if (m != LlcMode::Shared && m != LlcMode::Private)
                r.fail("bad LLC mode");
        }
    }

  private:
    const AddressMapping &mapping_;
    std::vector<LlcMode> modes_;
};

/** Mode display name. */
inline const char *
llcModeName(LlcMode m)
{
    return m == LlcMode::Shared ? "shared" : "private";
}

} // namespace amsc

#endif // AMSC_LLC_SLICE_MAPPER_HH
