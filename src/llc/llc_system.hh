/**
 * @file
 * The adaptive memory-side LLC (paper section 4).
 *
 * LlcSystem owns the 64 slices, the shared/private slice mapper, the
 * online profiler, the Fig-3 sharing tracker and the adaptive
 * controller state machine implementing the paper's reconfiguration
 * rules:
 *
 *   Rule #1 (S->P): switch to private if the predicted private miss
 *       rate is within `missTolerance` of the measured shared rate
 *       (insensitive application; private enables MC-router gating).
 *   Rule #2 (S->P): switch to private if the bandwidth model predicts
 *       higher supplied bandwidth under private caching.
 *   Rule #3 (P->S): revert to shared at each 1 M-cycle epoch boundary
 *       and at every kernel launch.
 *
 * A shared->private transition stalls the SMs, waits for all in-flight
 * packets to drain, writes dirty LLC lines back, power-gates the
 * MC-routers (if the NoC supports it) and flips the mapper; a
 * private->shared transition drains, invalidates (private contents
 * are clean under write-through), powers the routers back on and
 * flips the mapper. All transition cycles are accounted as overhead.
 */

#ifndef AMSC_LLC_LLC_SYSTEM_HH
#define AMSC_LLC_LLC_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "llc/llc_slice.hh"
#include "llc/profiler.hh"
#include "llc/sharing_tracker.hh"
#include "llc/slice_mapper.hh"
#include "mem/memory_system.hh"
#include "noc/network.hh"

namespace amsc
{

/** Per-application LLC management policy. */
enum class LlcPolicy
{
    ForceShared,  ///< baseline: always shared
    ForcePrivate, ///< always private (static private organization)
    Adaptive,     ///< the paper's mechanism
};

/** Parse a policy name ("shared" | "private" | "adaptive"). */
LlcPolicy parseLlcPolicy(const std::string &name);

/** Policy display name. */
std::string llcPolicyName(LlcPolicy p);

/** Adaptive LLC parameters. */
struct LlcParams
{
    /** Policy per application (size = number of apps, >= 1). */
    std::vector<LlcPolicy> appPolicies{LlcPolicy::Adaptive};
    /** Slice template (id/mc filled per slice). */
    LlcSliceParams slice{};
    /** Profiling window length (paper: 50 K cycles). */
    Cycle profileLen = 50000;
    /** Epoch length (paper: 1 M cycles). */
    Cycle epochLen = 1000000;
    /** Rule #1 miss-rate tolerance (paper: 2%). */
    double missTolerance = 0.02;
    /**
     * Rule #2 hysteresis: the predicted private bandwidth must exceed
     * the shared bandwidth by this factor before a transition is
     * worth its reconfiguration cost and estimator noise.
     */
    double bwMargin = 1.15;
    /** Power-gate / power-on latency (paper: tens of cycles). */
    Cycle gateDelay = 30;
    /** Profiler configuration. */
    ProfilerParams profiler{};
    /** Enable the Fig-3 sharing tracker. */
    bool trackSharing = false;
};

/** Controller statistics. */
struct LlcSystemStats
{
    std::uint64_t profileWindows = 0;
    std::uint64_t decisionsPrivate = 0;
    std::uint64_t decisionsShared = 0;
    std::uint64_t rule1Fires = 0;
    std::uint64_t rule2Fires = 0;
    /** Decisions forced to shared because atomics were observed. */
    std::uint64_t atomicVetoes = 0;
    std::uint64_t transitionsToPrivate = 0;
    std::uint64_t transitionsToShared = 0;
    std::uint64_t reconfigStallCycles = 0;
    std::uint64_t cyclesPrivate = 0;
    std::uint64_t cyclesShared = 0;
};

/**
 * One controller event for timeline observers (obs/recorder.hh).
 *
 * Phase events announce every FSM state entry; Decision events carry
 * the end-of-window Rule #1/#2 evaluation together with the profile
 * snapshot (the ATD private-miss-rate estimate and the LSP/bandwidth
 * model outputs) that drove it; Reprofile events mark the Rule #3
 * private-to-shared triggers. Emitted only when an observer is
 * installed -- the stream is read-only and never alters control flow.
 */
struct LlcCtrlEvent
{
    enum class Kind : std::uint8_t
    {
        Phase,     ///< FSM entered a new state
        Decision,  ///< end-of-window Rule #1/#2 evaluation
        Reprofile, ///< Rule #3 trigger (epoch/kernel/atomic)
    };

    Kind kind = Kind::Phase;
    Cycle at = 0;
    /** Phase: state just entered (static-storage name). */
    const char *phase = "";
    /** Decision: firing rule (0 = stay shared, 1, 2); Reprofile: 3. */
    int rule = 0;
    /** Decision outcome: switch to private. */
    bool toPrivate = false;
    /** Forced shared by observed global atomics. */
    bool atomicVeto = false;
    /** Reprofile trigger ("epoch-end" | "kernel-launch" | "atomic"). */
    const char *reason = "";
    /** Decision: the estimates behind rule/toPrivate. */
    ProfileSnapshot snap{};
};

/** The adaptive memory-side last-level cache. */
class LlcSystem
{
  public:
    /** Stalls/unstalls all SMs (wired by the GPU system). */
    using StallFn = std::function<void(bool)>;
    /** Controller event observer (timeline sinks). */
    using EventObserver = std::function<void(const LlcCtrlEvent &)>;
    /** True when NoC + DRAM hold no in-flight work. */
    using QuiescentFn = std::function<bool()>;
    /** Maps an SM to its application id. */
    using AppOfFn = std::function<AppId(SmId)>;
    /** Maps an SM to its cluster id. */
    using ClusterOfFn = std::function<ClusterId(SmId)>;

    LlcSystem(const LlcParams &params, const AddressMapping &mapping,
              Network *net, MemorySystem *mem, AppOfFn app_of,
              ClusterOfFn cluster_of);

    /** Wire the reconfiguration hooks. */
    void setHooks(StallFn stall, QuiescentFn quiescent);

    /**
     * Install the controller event observer (nullptr clears). The
     * observer must not touch the simulation: it receives Phase,
     * Decision and Reprofile records (LlcCtrlEvent) as they happen.
     */
    void setEventObserver(EventObserver obs);

    /** Display name of the controller's current FSM state. */
    const char *phaseName() const;

    /**
     * Slice selection for a new request; also feeds the LSP counters
     * while a profiling window is open. Called by SMs via the system.
     */
    SliceId sliceFor(Addr line_addr, ClusterId cluster, AppId app);

    /** Advance one cycle (slices + controller FSM). */
    void tick(Cycle now);

    /** Route a DRAM read completion to its slice. */
    void onDramReply(Addr line_addr, std::uint64_t token, Cycle now);

    /**
     * Kernel-boundary notification (Rule #3 + software coherence:
     * the private LLC is flushed together with the L1s).
     */
    void onKernelLaunch(Cycle now);

    /** Current mode of application @p app. */
    LlcMode mode(AppId app = 0) const { return mapper_.mode(app); }

    /** True when all slices are drained. */
    bool drained() const;

    /**
     * Cycle at which the controller FSM next changes state on time
     * alone (the power-gate/ungate countdowns); kNoCycle in every
     * state that advances on external progress instead. Feeds the
     * quiescence fast-forward in GpuSystem::run().
     */
    Cycle
    nextTimedEventCycle() const
    {
        return (state_ == CtrlState::GateWait ||
                state_ == CtrlState::UngateWait)
            ? stateDeadline_
            : kNoCycle;
    }

    /**
     * Earliest cycle >= @p now whose tick() is not a no-op beyond
     * the per-cycle mode counters advanceIdleCycles() compensates:
     * the minimum over every slice's next event and the controller
     * FSM's next action (profile window marks and deadlines, epoch
     * ends, gate/ungate countdowns, pending reprofiles and atomic
     * vetoes, and `now` in a quiescence-poll state whose condition
     * already holds). The poll states return kNoCycle while their
     * condition is false: the components being waited on then
     * advertise finite events themselves, and the global minimum is
     * recomputed after every live tick.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Account @p n externally skipped idle cycles in the per-cycle
     * mode counters (tick() increments one of them every cycle).
     * Only legal while the whole system is quiescent and no FSM
     * deadline lies inside the skipped range.
     */
    void
    advanceIdleCycles(Cycle n)
    {
        if (mapper_.mode(adaptiveApp()) == LlcMode::Private)
            stats_.cyclesPrivate += n;
        else
            stats_.cyclesShared += n;
    }

    // ---- aggregate metrics ---------------------------------------
    std::uint64_t totalAtomics() const;
    std::uint64_t totalBypasses() const;
    std::uint64_t totalReads() const;
    std::uint64_t totalAccesses() const;
    std::uint64_t totalResponses() const;
    double aggregateReadMissRate() const;
    /** Per-slice read+write access counts (LSP measurements). */
    std::vector<std::uint64_t> sliceAccessCounts() const;

    LlcSlice &slice(SliceId s) { return *slices_[s]; }
    const LlcSlice &slice(SliceId s) const { return *slices_[s]; }
    std::uint32_t numSlices() const
    {
        return static_cast<std::uint32_t>(slices_.size());
    }
    SliceMapper &mapper() { return mapper_; }
    const LlcProfiler &profiler() const { return profiler_; }
    SharingTracker &sharingTracker() { return tracker_; }
    const SharingTracker &sharingTracker() const { return tracker_; }
    const LlcSystemStats &stats() const { return stats_; }
    const LlcParams &params() const { return params_; }
    /** Most recent profile snapshot (after a decision). */
    const ProfileSnapshot &lastSnapshot() const { return lastSnap_; }

    /** Register controller + slice statistics in @p set. */
    void registerStats(StatSet &set) const;

    /**
     * Serialize the controller FSM, mapper, profiler, tracker and
     * every slice. The NoC private-mode/bypass state rides in the
     * Network checkpoint.
     */
    void saveCkpt(CkptWriter &w) const;

    /** Restore state written by saveCkpt(). */
    void loadCkpt(CkptReader &r);

  private:
    /** Controller FSM states. */
    enum class CtrlState
    {
        Disabled,      ///< no adaptive app: static modes only
        Profiling,     ///< shared mode, window open
        SharedRun,     ///< shared mode until epoch end
        DrainToPrivate,///< stalled, waiting for quiescence
        Writeback,     ///< dirty write-back pass
        GateWait,      ///< power-gating the MC-routers
        PrivateRun,    ///< private mode until epoch end / kernel
        DrainToShared, ///< stalled, waiting for quiescence
        UngateWait,    ///< powering the MC-routers back on
    };

    /** True if any app uses the adaptive policy. */
    bool adaptiveEnabled() const;

    /** Controller-FSM part of nextEventCycle(). */
    Cycle nextCtrlEventCycle(Cycle now) const;

    /** Display name of @p s (timeline phase vocabulary). */
    static const char *ctrlStateName(CtrlState s);

    /** Enter @p s and notify the event observer. */
    void setState(CtrlState s, Cycle now);

    /** Emit a Rule #3 Reprofile event (no-op without observer). */
    void notifyReprofile(Cycle now, const char *reason,
                         bool atomic_veto);

    /** The (single) adaptive application id. */
    AppId adaptiveApp() const { return 0; }

    void startEpoch(Cycle now);
    void decide(Cycle now);
    void enterPrivate(Cycle now);
    void enterShared(Cycle now);
    void applyNetworkMode();

    LlcParams params_;
    SliceMapper mapper_;
    Network *net_;
    MemorySystem *mem_;
    AppOfFn appOf_;
    ClusterOfFn clusterOf_;
    LlcProfiler profiler_;
    SharingTracker tracker_;
    std::vector<std::unique_ptr<LlcSlice>> slices_;

    StallFn stall_;
    QuiescentFn quiescent_;
    EventObserver eventObs_;

    CtrlState state_ = CtrlState::Disabled;
    Cycle stateDeadline_ = 0;
    Cycle windowMid_ = 0;
    bool midMarked_ = false;
    Cycle epochEnd_ = 0;
    Cycle stallStart_ = 0;
    bool reprofileRequested_ = false;
    bool profilingActive_ = false;
    /** Atomics seen before the current window / private phase. */
    std::uint64_t atomicsBaseline_ = 0;
    ProfileSnapshot lastSnap_{};
    LlcSystemStats stats_;
};

} // namespace amsc

#endif // AMSC_LLC_LLC_SYSTEM_HH
