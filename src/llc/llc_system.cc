#include "llc/llc_system.hh"

#include <cmath>

#include "common/error.hh"
#include "common/log.hh"

namespace amsc
{

LlcPolicy
parseLlcPolicy(const std::string &name)
{
    if (name == "shared")
        return LlcPolicy::ForceShared;
    if (name == "private")
        return LlcPolicy::ForcePrivate;
    if (name == "adaptive")
        return LlcPolicy::Adaptive;
    throw ConfigError(
        strfmt("unknown LLC policy '%s' (shared|private|adaptive)",
               name.c_str()));
}

std::string
llcPolicyName(LlcPolicy p)
{
    switch (p) {
      case LlcPolicy::ForceShared:
        return "shared";
      case LlcPolicy::ForcePrivate:
        return "private";
      case LlcPolicy::Adaptive:
        return "adaptive";
    }
    return "?";
}

LlcSystem::LlcSystem(const LlcParams &params,
                     const AddressMapping &mapping, Network *net,
                     MemorySystem *mem, AppOfFn app_of,
                     ClusterOfFn cluster_of)
    : params_(params),
      mapper_(mapping,
              static_cast<std::uint32_t>(params.appPolicies.size())),
      net_(net), mem_(mem), appOf_(std::move(app_of)),
      clusterOf_(std::move(cluster_of)), profiler_(params.profiler),
      tracker_(1000)
{
    tracker_.setEnabled(params_.trackSharing);

    const auto &mp = mapping.params();
    const std::uint32_t num_slices = mp.numMcs * mp.slicesPerMc;
    if (num_slices != params_.profiler.numSlices)
        fatal("LLC: profiler slice count %u != %u",
              params_.profiler.numSlices, num_slices);

    auto write_through = [this](AppId app) {
        return mapper_.mode(app) == LlcMode::Private;
    };
    for (SliceId s = 0; s < num_slices; ++s) {
        LlcSliceParams sp = params_.slice;
        sp.id = s;
        sp.mc = s / mp.slicesPerMc;
        sp.seed = params_.slice.seed + s;
        slices_.push_back(std::make_unique<LlcSlice>(
            sp, net_, mem_, appOf_, write_through));
        slices_.back()->setObserver(
            [this](SliceId slice, Addr line, SmId src, bool hit,
                   bool is_read, Cycle now) {
                const ClusterId cl = clusterOf_(src);
                if (profilingActive_)
                    profiler_.onSliceAccess(slice, line, cl, hit,
                                            is_read, now);
                tracker_.onAccess(line, cl, now);
            });
    }

    // Static per-app modes; the adaptive policy (single-app only)
    // starts shared and profiles.
    std::uint32_t adaptive_count = 0;
    for (AppId a = 0; a < params_.appPolicies.size(); ++a) {
        switch (params_.appPolicies[a]) {
          case LlcPolicy::ForceShared:
            mapper_.setMode(a, LlcMode::Shared);
            break;
          case LlcPolicy::ForcePrivate:
            mapper_.setMode(a, LlcMode::Private);
            break;
          case LlcPolicy::Adaptive:
            ++adaptive_count;
            mapper_.setMode(a, LlcMode::Shared);
            break;
        }
    }
    if (adaptive_count > 0 &&
        (adaptive_count > 1 || params_.appPolicies.size() > 1))
        fatal("adaptive LLC policy supports a single application; use "
              "forced per-app modes for multi-program runs");

    applyNetworkMode();
    if (adaptive_count == 1)
        startEpoch(0);
    else
        state_ = CtrlState::Disabled;
}

void
LlcSystem::setHooks(StallFn stall, QuiescentFn quiescent)
{
    stall_ = std::move(stall);
    quiescent_ = std::move(quiescent);
}

void
LlcSystem::setEventObserver(EventObserver obs)
{
    eventObs_ = std::move(obs);
}

const char *
LlcSystem::ctrlStateName(CtrlState s)
{
    switch (s) {
      case CtrlState::Disabled:
        return "Disabled";
      case CtrlState::Profiling:
        return "Profiling";
      case CtrlState::SharedRun:
        return "SharedRun";
      case CtrlState::DrainToPrivate:
        return "DrainToPrivate";
      case CtrlState::Writeback:
        return "Writeback";
      case CtrlState::GateWait:
        return "GateWait";
      case CtrlState::PrivateRun:
        return "PrivateRun";
      case CtrlState::DrainToShared:
        return "DrainToShared";
      case CtrlState::UngateWait:
        return "UngateWait";
    }
    return "?";
}

const char *
LlcSystem::phaseName() const
{
    return ctrlStateName(state_);
}

void
LlcSystem::setState(CtrlState s, Cycle now)
{
    state_ = s;
    if (eventObs_) {
        LlcCtrlEvent e;
        e.kind = LlcCtrlEvent::Kind::Phase;
        e.at = now;
        e.phase = ctrlStateName(s);
        eventObs_(e);
    }
}

void
LlcSystem::notifyReprofile(Cycle now, const char *reason,
                           bool atomic_veto)
{
    if (!eventObs_)
        return;
    LlcCtrlEvent e;
    e.kind = LlcCtrlEvent::Kind::Reprofile;
    e.at = now;
    e.rule = 3;
    e.atomicVeto = atomic_veto;
    e.reason = reason;
    eventObs_(e);
}

bool
LlcSystem::adaptiveEnabled() const
{
    for (const LlcPolicy p : params_.appPolicies) {
        if (p == LlcPolicy::Adaptive)
            return true;
    }
    return false;
}

SliceId
LlcSystem::sliceFor(Addr line_addr, ClusterId cluster, AppId app)
{
    const auto &mp = mapper_.mapping().params();
    if (profilingActive_) {
        const McId mc = mapper_.mapping().decode(line_addr).mc;
        profiler_.onRequestIssued(cluster, mc);
    }
    (void)mp;
    return mapper_.sliceFor(line_addr, cluster, app);
}

void
LlcSystem::applyNetworkMode()
{
    bool all_private = true;
    for (AppId a = 0; a < mapper_.numApps(); ++a)
        all_private = all_private &&
            mapper_.mode(a) == LlcMode::Private;
    if (net_->supportsPowerGating())
        net_->setPrivateMode(all_private);
}

void
LlcSystem::startEpoch(Cycle now)
{
    epochEnd_ = now + params_.epochLen;
    stateDeadline_ = now + params_.profileLen;
    windowMid_ = now + params_.profileLen / 2;
    midMarked_ = false;
    reprofileRequested_ = false;
    profilingActive_ = true;
    atomicsBaseline_ = totalAtomics();
    profiler_.beginWindow();
    setState(CtrlState::Profiling, now);
}

void
LlcSystem::decide(Cycle now)
{
    lastSnap_ = profiler_.snapshot();
    profilingActive_ = false;
    ++stats_.profileWindows;

    // Global atomics are handled by the ROP at a fixed slice; the
    // paper opts for the shared organization whenever the workload
    // uses them (section 4.1).
    const bool atomics_seen = totalAtomics() > atomicsBaseline_;
    // Rule #1's similar-miss-rate signal is meaningless while the
    // LLC is still warming (a cold cache makes every organization
    // look identical), so it only fires on steady windows. Rule #2
    // is guarded by the bandwidth hysteresis margin instead, which
    // absorbs both warm-up noise and estimator noise.
    const bool rule1 = !atomics_seen && !lastSnap_.warming &&
        std::abs(lastSnap_.privateMissRate - lastSnap_.sharedMissRate)
            <= params_.missTolerance;
    const bool rule2 = !atomics_seen &&
        lastSnap_.privateBw > lastSnap_.sharedBw * params_.bwMargin;
    if (atomics_seen)
        ++stats_.atomicVetoes;
    verbose("llc decide @%llu: miss_s=%.3f miss_p=%.3f lsp_s=%.1f "
            "lsp_p=%.1f bw_s=%.0f bw_p=%.0f samples=%llu -> %s%s",
            static_cast<unsigned long long>(now),
            lastSnap_.sharedMissRate, lastSnap_.privateMissRate,
            lastSnap_.sharedLsp, lastSnap_.privateLsp,
            lastSnap_.sharedBw, lastSnap_.privateBw,
            static_cast<unsigned long long>(lastSnap_.sampledAccesses),
            (rule1 || rule2) ? "private" : "shared",
            rule1 ? " (rule1)" : (rule2 ? " (rule2)" : ""));
    if (rule1)
        ++stats_.rule1Fires;
    else if (rule2)
        ++stats_.rule2Fires;

    if (eventObs_) {
        LlcCtrlEvent e;
        e.kind = LlcCtrlEvent::Kind::Decision;
        e.at = now;
        e.rule = rule1 ? 1 : (rule2 ? 2 : 0);
        e.toPrivate = rule1 || rule2;
        e.atomicVeto = atomics_seen;
        e.snap = lastSnap_;
        eventObs_(e);
    }

    if (rule1 || rule2) {
        ++stats_.decisionsPrivate;
        enterPrivate(now);
    } else {
        ++stats_.decisionsShared;
        setState(CtrlState::SharedRun, now);
    }
}

void
LlcSystem::enterPrivate(Cycle now)
{
    stall_(true);
    stallStart_ = now;
    setState(CtrlState::DrainToPrivate, now);
}

void
LlcSystem::enterShared(Cycle now)
{
    stall_(true);
    stallStart_ = now;
    setState(CtrlState::DrainToShared, now);
}

void
LlcSystem::tick(Cycle now)
{
    for (auto &s : slices_)
        s->tick(now);

    if (mapper_.mode(adaptiveApp()) == LlcMode::Private)
        ++stats_.cyclesPrivate;
    else
        ++stats_.cyclesShared;

    switch (state_) {
      case CtrlState::Disabled:
        break;

      case CtrlState::Profiling:
        if (reprofileRequested_) {
            startEpoch(now);
            break;
        }
        if (!midMarked_ && now >= windowMid_) {
            profiler_.markMidWindow();
            midMarked_ = true;
        }
        if (now >= stateDeadline_)
            decide(now);
        break;

      case CtrlState::SharedRun:
        if (reprofileRequested_ || now >= epochEnd_)
            startEpoch(now);
        break;

      case CtrlState::DrainToPrivate:
        if (quiescent_() && drained()) {
            for (auto &s : slices_)
                s->startWritebackAll(now);
            setState(CtrlState::Writeback, now);
        }
        break;

      case CtrlState::Writeback:
        if (drained() && mem_->drained()) {
            setState(CtrlState::GateWait, now);
            stateDeadline_ = now + params_.gateDelay;
        }
        break;

      case CtrlState::GateWait:
        if (now >= stateDeadline_) {
            mapper_.setMode(adaptiveApp(), LlcMode::Private);
            applyNetworkMode();
            stall_(false);
            stats_.reconfigStallCycles += now - stallStart_;
            ++stats_.transitionsToPrivate;
            setState(CtrlState::PrivateRun, now);
        }
        break;

      case CtrlState::PrivateRun:
        // A newly-arriving global atomic forces the shared
        // organization (paper section 4.1).
        if (totalAtomics() > atomicsBaseline_) {
            ++stats_.atomicVetoes;
            reprofileRequested_ = true;
            notifyReprofile(now, "atomic", true);
        }
        if (reprofileRequested_ || now >= epochEnd_) {
            if (!reprofileRequested_)
                notifyReprofile(now, "epoch-end", false);
            enterShared(now);
        }
        break;

      case CtrlState::DrainToShared:
        if (quiescent_() && drained()) {
            // Private contents are clean (write-through): invalidate.
            for (auto &s : slices_)
                s->invalidateAll();
            setState(CtrlState::UngateWait, now);
            stateDeadline_ = now + params_.gateDelay;
        }
        break;

      case CtrlState::UngateWait:
        if (now >= stateDeadline_) {
            mapper_.setMode(adaptiveApp(), LlcMode::Shared);
            applyNetworkMode();
            stall_(false);
            stats_.reconfigStallCycles += now - stallStart_;
            ++stats_.transitionsToShared;
            startEpoch(now);
        }
        break;
    }
}

Cycle
LlcSystem::nextCtrlEventCycle(Cycle now) const
{
    switch (state_) {
      case CtrlState::Disabled:
        return kNoCycle;

      case CtrlState::Profiling: {
        if (reprofileRequested_)
            return now;
        const Cycle e = midMarked_
            ? stateDeadline_
            : std::min(windowMid_, stateDeadline_);
        return e > now ? e : now;
      }

      case CtrlState::SharedRun:
        if (reprofileRequested_)
            return now;
        return epochEnd_ > now ? epochEnd_ : now;

      case CtrlState::DrainToPrivate:
      case CtrlState::DrainToShared:
        return (quiescent_() && drained()) ? now : kNoCycle;

      case CtrlState::Writeback:
        return (drained() && mem_->drained()) ? now : kNoCycle;

      case CtrlState::GateWait:
      case CtrlState::UngateWait:
        return stateDeadline_ > now ? stateDeadline_ : now;

      case CtrlState::PrivateRun:
        if (reprofileRequested_ ||
            totalAtomics() > atomicsBaseline_)
            return now;
        return epochEnd_ > now ? epochEnd_ : now;
    }
    return kNoCycle;
}

Cycle
LlcSystem::nextEventCycle(Cycle now) const
{
    Cycle e = nextCtrlEventCycle(now);
    if (e <= now)
        return now;
    for (const auto &s : slices_) {
        const Cycle se = s->nextEventCycle(now);
        if (se <= now)
            return now;
        e = std::min(e, se);
    }
    return e;
}

void
LlcSystem::onDramReply(Addr line_addr, std::uint64_t token, Cycle now)
{
    const SliceId s = static_cast<SliceId>(token);
    if (s >= slices_.size())
        panic("DRAM reply for unknown slice token %llu",
              static_cast<unsigned long long>(token));
    slices_[s]->onDramReply(line_addr, now);
}

void
LlcSystem::onKernelLaunch(Cycle now)
{
    // Software coherence: flushing the L1s at a kernel boundary also
    // flushes a private LLC (clean under write-through).
    bool any_private = false;
    for (AppId a = 0; a < mapper_.numApps(); ++a)
        any_private =
            any_private || mapper_.mode(a) == LlcMode::Private;
    if (any_private) {
        for (auto &s : slices_)
            s->invalidateAll();
    }
    if (adaptiveEnabled()) {
        reprofileRequested_ = true; // Rule #3
        notifyReprofile(now, "kernel-launch", false);
    }
}

bool
LlcSystem::drained() const
{
    for (const auto &s : slices_) {
        if (!s->drained())
            return false;
    }
    return true;
}

std::uint64_t
LlcSystem::totalAtomics() const
{
    std::uint64_t n = 0;
    for (const auto &s : slices_)
        n += s->stats().atomics;
    return n;
}

std::uint64_t
LlcSystem::totalBypasses() const
{
    std::uint64_t n = 0;
    for (const auto &s : slices_)
        n += s->stats().bypasses;
    return n;
}

std::uint64_t
LlcSystem::totalReads() const
{
    std::uint64_t n = 0;
    for (const auto &s : slices_)
        n += s->stats().reads;
    return n;
}

std::uint64_t
LlcSystem::totalAccesses() const
{
    std::uint64_t n = 0;
    for (const auto &s : slices_)
        n += s->stats().accesses();
    return n;
}

std::uint64_t
LlcSystem::totalResponses() const
{
    std::uint64_t n = 0;
    for (const auto &s : slices_)
        n += s->stats().responses;
    return n;
}

double
LlcSystem::aggregateReadMissRate() const
{
    std::uint64_t reads = 0;
    std::uint64_t misses = 0;
    for (const auto &s : slices_) {
        reads += s->stats().reads;
        misses += s->stats().readMisses;
    }
    return reads == 0
        ? 0.0
        : static_cast<double>(misses) / static_cast<double>(reads);
}

std::vector<std::uint64_t>
LlcSystem::sliceAccessCounts() const
{
    std::vector<std::uint64_t> out;
    out.reserve(slices_.size());
    for (const auto &s : slices_)
        out.push_back(s->stats().accesses());
    return out;
}

void
LlcSystem::registerStats(StatSet &set) const
{
    set.addCounter("llc.profile_windows", "profiling windows",
                   stats_.profileWindows);
    set.addCounter("llc.decisions_private", "private decisions",
                   stats_.decisionsPrivate);
    set.addCounter("llc.decisions_shared", "shared decisions",
                   stats_.decisionsShared);
    set.addCounter("llc.rule1_fires", "Rule #1 transitions",
                   stats_.rule1Fires);
    set.addCounter("llc.rule2_fires", "Rule #2 transitions",
                   stats_.rule2Fires);
    set.addCounter("llc.atomic_vetoes",
                   "shared decisions forced by global atomics",
                   stats_.atomicVetoes);
    set.addCounter("llc.reconfig_stall_cycles",
                   "cycles stalled for reconfiguration",
                   stats_.reconfigStallCycles);
    set.addCounter("llc.cycles_private", "cycles in private mode",
                   stats_.cyclesPrivate);
    set.addCounter("llc.cycles_shared", "cycles in shared mode",
                   stats_.cyclesShared);
    const LlcSystem *self = this;
    set.add("llc.read_miss_rate", "aggregate LLC read miss rate",
            [self]() { return self->aggregateReadMissRate(); });
    for (const auto &s : slices_)
        s->registerStats(set);
}

void
LlcSystem::saveCkpt(CkptWriter &w) const
{
    mapper_.saveCkpt(w);
    profiler_.saveCkpt(w);
    tracker_.saveCkpt(w);
    for (const auto &s : slices_)
        s->saveCkpt(w);
    w.u8(static_cast<std::uint8_t>(state_));
    w.u64(stateDeadline_);
    w.u64(windowMid_);
    w.b(midMarked_);
    w.u64(epochEnd_);
    w.u64(stallStart_);
    w.b(reprofileRequested_);
    w.b(profilingActive_);
    w.u64(atomicsBaseline_);
    ckptValue(w, lastSnap_);
    w.pod(stats_);
}

void
LlcSystem::loadCkpt(CkptReader &r)
{
    mapper_.loadCkpt(r);
    profiler_.loadCkpt(r);
    tracker_.loadCkpt(r);
    for (auto &s : slices_)
        s->loadCkpt(r);
    const std::uint8_t st = r.u8();
    if (st > static_cast<std::uint8_t>(CtrlState::UngateWait))
        r.fail("bad LLC controller state");
    state_ = static_cast<CtrlState>(st);
    stateDeadline_ = r.u64();
    windowMid_ = r.u64();
    midMarked_ = r.b();
    epochEnd_ = r.u64();
    stallStart_ = r.u64();
    reprofileRequested_ = r.b();
    profilingActive_ = r.b();
    atomicsBaseline_ = r.u64();
    ckptValue(r, lastSnap_);
    r.pod(stats_);
}

} // namespace amsc
