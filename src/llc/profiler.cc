#include "llc/profiler.hh"

#include <algorithm>

#include "common/log.hh"

namespace amsc
{

LlcProfiler::LlcProfiler(const ProfilerParams &params)
    : params_(params), atd_(params.atd)
{
    if (params_.numSlices == 0 || params_.numClusters == 0)
        fatal("profiler requires slices and clusters");
    sliceAccessCounts_.assign(params_.numSlices, 0);
    lspCounters_.assign(params_.numMcs, 0);
}

void
LlcProfiler::beginWindow()
{
    std::fill(sliceAccessCounts_.begin(), sliceAccessCounts_.end(), 0);
    std::fill(lspCounters_.begin(), lspCounters_.end(), 0);
    reads_ = 0;
    readHits_ = 0;
    firstHalfReads_ = 0;
    firstHalfHits_ = 0;
    midMarked_ = false;
    atd_.reset();
}

void
LlcProfiler::markMidWindow()
{
    firstHalfReads_ = reads_;
    firstHalfHits_ = readHits_;
    midMarked_ = true;
}

void
LlcProfiler::onSliceAccess(SliceId slice, Addr line, ClusterId cluster,
                           bool read_hit, bool is_read, Cycle now)
{
    ++sliceAccessCounts_[slice];
    if (is_read) {
        ++reads_;
        if (read_hit)
            ++readHits_;
    }
    if (slice == params_.atdSlice)
        atd_.observe(line, cluster, now);
}

void
LlcProfiler::onRequestIssued(ClusterId cluster, McId mc)
{
    if (cluster == params_.lspCluster && mc < lspCounters_.size())
        ++lspCounters_[mc];
}

double
LlcProfiler::lsp(const std::vector<std::uint64_t> &counts)
{
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    for (const std::uint64_t c : counts) {
        sum += c;
        max = std::max(max, c);
    }
    if (max == 0)
        return 1.0;
    return static_cast<double>(sum) / static_cast<double>(max);
}

double
LlcProfiler::bandwidth(double hit_rate, double lsp_value,
                       double slice_bw, double miss_rate, double mem_bw)
{
    return hit_rate * lsp_value * slice_bw + miss_rate * mem_bw;
}

ProfileSnapshot
LlcProfiler::snapshot() const
{
    ProfileSnapshot s;
    s.sampledAccesses = atd_.samples();
    s.sharedMissRate = reads_ == 0
        ? 0.0
        : 1.0 -
            static_cast<double>(readHits_) /
                static_cast<double>(reads_);
    if (midMarked_ && firstHalfReads_ > 0 &&
        reads_ > firstHalfReads_) {
        const double first = 1.0 -
            static_cast<double>(firstHalfHits_) /
                static_cast<double>(firstHalfReads_);
        const double second = 1.0 -
            static_cast<double>(readHits_ - firstHalfHits_) /
                static_cast<double>(reads_ - firstHalfReads_);
        s.warming = first - second > 0.05;
    }
    s.privateMissRate = atd_.samples() == 0
        ? s.sharedMissRate
        : atd_.predictedPrivateMissRate();

    s.sharedLsp = lsp(sliceAccessCounts_);
    // Cluster-0 counters give the parallelism across this cluster's
    // private slices (one per MC); symmetric clusters contribute the
    // same pattern in their own slices, scaling LSP by the cluster
    // count (capped at the physical slice count).
    s.privateLsp = std::min<double>(
        lsp(lspCounters_) * params_.numClusters,
        static_cast<double>(params_.numSlices));

    s.sharedBw = bandwidth(1.0 - s.sharedMissRate, s.sharedLsp,
                           params_.llcSliceBw, s.sharedMissRate,
                           params_.memBw);
    // Replication can only add misses: the bandwidth model clamps
    // the sampled estimate so noise never credits private caching
    // with a lower miss rate than shared. (Rule #1's similarity test
    // keeps the raw estimate.)
    const double miss_p_clamped =
        std::max(s.privateMissRate, s.sharedMissRate);
    s.privateBw = bandwidth(1.0 - miss_p_clamped, s.privateLsp,
                            params_.llcSliceBw, miss_p_clamped,
                            params_.memBw);
    return s;
}

void
LlcProfiler::saveCkpt(CkptWriter &w) const
{
    atd_.saveCkpt(w);
    w.podVec(sliceAccessCounts_);
    w.podVec(lspCounters_);
    w.u64(reads_);
    w.u64(readHits_);
    w.u64(firstHalfReads_);
    w.u64(firstHalfHits_);
    w.b(midMarked_);
}

void
LlcProfiler::loadCkpt(CkptReader &r)
{
    atd_.loadCkpt(r);
    const std::size_t slices = sliceAccessCounts_.size();
    const std::size_t mcs = lspCounters_.size();
    r.podVec(sliceAccessCounts_);
    r.podVec(lspCounters_);
    if (sliceAccessCounts_.size() != slices ||
        lspCounters_.size() != mcs)
        r.fail("profiler geometry mismatch");
    reads_ = r.u64();
    readHits_ = r.u64();
    firstHalfReads_ = r.u64();
    firstHalfHits_ = r.u64();
    midMarked_ = r.b();
}

} // namespace amsc
