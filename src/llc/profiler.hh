/**
 * @file
 * Online profiler for adaptive last-level caching (paper section 4.4).
 *
 * While the GPU executes under the shared LLC organization, the
 * profiler gathers, over a 50 K-cycle window:
 *
 *   - the measured shared-LLC miss rate and the ATD-predicted
 *     private-LLC miss rate (Rule #1 inputs);
 *   - LLC Slice Parallelism (LSP) under both organizations:
 *       LSP = sum_i(LLC_i) / max_i(LLC_i)
 *     with the shared LSP measured from per-slice access counters and
 *     the private LSP estimated from 8 16-bit counters at the first
 *     cluster's SM-router, one per memory controller (the private
 *     slices cluster 0 would address), scaled by the cluster count;
 *   - the bandwidth model
 *       BW = LLC_hit x LSP x LLC_slice_BW + LLC_miss x MEM_BW
 *     evaluated for both organizations (Rule #2 inputs).
 */

#ifndef AMSC_LLC_PROFILER_HH
#define AMSC_LLC_PROFILER_HH

#include <cstdint>
#include <vector>

#include "cache/atd.hh"
#include "common/ckpt.hh"
#include "common/types.hh"

namespace amsc
{

/** Profiler configuration. */
struct ProfilerParams
{
    std::uint32_t numSlices = 64;
    std::uint32_t numClusters = 8;
    std::uint32_t numMcs = 8;
    /** Raw per-slice LLC bandwidth, bytes/cycle (channel width). */
    double llcSliceBw = 32.0;
    /** Raw aggregate DRAM bandwidth, bytes/cycle. */
    double memBw = 80.0;
    /** ATD geometry. */
    AtdParams atd{};
    /** Monitored slice for the ATD (paper: a single slice). */
    SliceId atdSlice = 0;
    /** Monitored cluster for private-LSP counters (paper: first). */
    ClusterId lspCluster = 0;
};

/** Decision inputs produced at the end of a profiling window. */
struct ProfileSnapshot
{
    std::uint64_t sampledAccesses = 0;
    double sharedMissRate = 0.0;
    double privateMissRate = 0.0; ///< ATD estimate
    double sharedLsp = 1.0;
    double privateLsp = 1.0; ///< scaled estimate
    double sharedBw = 0.0;
    double privateBw = 0.0;
    /**
     * True when the miss rate dropped materially between the two
     * halves of the window: the LLC is still warming, so
     * similar-miss-rate signals (Rule #1) are not yet trustworthy.
     */
    bool warming = false;
};

/*
 * ProfileSnapshot mixes doubles and a bool (tail padding), so raw
 * pod() serialization would leak indeterminate bytes into
 * checkpoints; encode field-wise.
 */
inline void
ckptValue(CkptWriter &w, const ProfileSnapshot &s)
{
    ckptFields(w, s.sampledAccesses, s.sharedMissRate,
               s.privateMissRate, s.sharedLsp, s.privateLsp,
               s.sharedBw, s.privateBw, s.warming);
}

inline void
ckptValue(CkptReader &r, ProfileSnapshot &s)
{
    ckptFields(r, s.sampledAccesses, s.sharedMissRate,
               s.privateMissRate, s.sharedLsp, s.privateLsp,
               s.sharedBw, s.privateBw, s.warming);
}

/** Shared-mode execution profiler. */
class LlcProfiler
{
  public:
    explicit LlcProfiler(const ProfilerParams &params);

    /** Begin a profiling window (clears counters). */
    void beginWindow();

    /**
     * Mark the midpoint of the window (warming detector): miss rates
     * are compared between the two halves.
     */
    void markMidWindow();

    /**
     * Observe one LLC slice access (wired to every slice).
     *
     * @param slice    slice that served the access.
     * @param line     line address.
     * @param cluster  requesting SM's cluster.
     * @param read_hit true if a read that hit.
     * @param is_read  true for reads (miss-rate accounting).
     */
    void onSliceAccess(SliceId slice, Addr line, ClusterId cluster,
                       bool read_hit, bool is_read, Cycle now);

    /**
     * Observe one request leaving an SM (LSP counters; the paper
     * counts at the first cluster's SM-router).
     *
     * @param cluster requesting cluster.
     * @param mc      memory controller owning the line.
     */
    void onRequestIssued(ClusterId cluster, McId mc);

    /** Evaluate the window into decision inputs. */
    ProfileSnapshot snapshot() const;

    /** Compute LSP from raw access counts. */
    static double lsp(const std::vector<std::uint64_t> &counts);

    /** Evaluate the bandwidth model. */
    static double bandwidth(double hit_rate, double lsp_value,
                            double slice_bw, double miss_rate,
                            double mem_bw);

    const Atd &atd() const { return atd_; }
    const ProfilerParams &params() const { return params_; }

    /** Serialize ATD and window counters. */
    void saveCkpt(CkptWriter &w) const;

    /** Restore state written by saveCkpt(). */
    void loadCkpt(CkptReader &r);

  private:
    ProfilerParams params_;
    Atd atd_;
    std::vector<std::uint64_t> sliceAccessCounts_;
    std::vector<std::uint64_t> lspCounters_; ///< per MC, cluster 0
    std::uint64_t reads_ = 0;
    std::uint64_t readHits_ = 0;
    std::uint64_t firstHalfReads_ = 0;
    std::uint64_t firstHalfHits_ = 0;
    bool midMarked_ = false;
};

} // namespace amsc

#endif // AMSC_LLC_PROFILER_HH
