#include "llc/slice_mapper.hh"

#include "common/log.hh"

namespace amsc
{

SliceMapper::SliceMapper(const AddressMapping &mapping,
                         std::uint32_t num_apps)
    : mapping_(mapping)
{
    if (num_apps == 0)
        fatal("SliceMapper requires at least one application");
    modes_.assign(num_apps, LlcMode::Shared);
}

void
SliceMapper::setMode(AppId app, LlcMode mode)
{
    if (app >= modes_.size())
        fatal("SliceMapper: app %u out of range", app);
    modes_[app] = mode;
}

} // namespace amsc
