/**
 * @file
 * One memory-side LLC slice (Table 1: 96 KB, 16-way, LRU, 8 per MC).
 *
 * Timing model: the slice accepts at most one request per cycle from
 * its network ejection queue (the tag pipeline), serves hits after a
 * fixed tag/data latency, and tracks misses in MSHRs that merge
 * same-line requests. Misses go to the slice's memory controller;
 * fills generate one reply per merged target. Replies inject into the
 * reply network at one message per cycle -- this 1-reply/cycle port is
 * the per-slice bandwidth whose saturation on hot shared lines is the
 * paper's central bottleneck.
 *
 * The write policy is dynamic (paper section 4.1): write-back while
 * the owning application runs a shared LLC, write-through when it
 * runs a private LLC (software coherence). Both are no-write-allocate.
 */

#ifndef AMSC_LLC_LLC_SLICE_HH
#define AMSC_LLC_LLC_SLICE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "cache/mshr.hh"
#include "cache/tag_array.hh"
#include "common/delay_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/memory_system.hh"
#include "noc/network.hh"

namespace amsc
{

/** LLC slice structural parameters. */
struct LlcSliceParams
{
    SliceId id = 0;
    McId mc = 0;
    std::uint32_t numSets = 48;
    std::uint32_t assoc = 16;
    ReplPolicy repl = ReplPolicy::Lru;
    /** Fill-bypass policy (docs/DESIGN.md). */
    BypassPolicy bypass = BypassPolicy::None;
    /** DRRIP leader sets per constituency. */
    std::uint32_t duelSets = 4;
    /**
     * Per-application bypass eligibility (1 = may bypass); empty =
     * every app follows the bypass policy. Lets multi-program runs
     * enable the streaming bypass for one co-runner only.
     */
    std::vector<std::uint8_t> bypassApp{};
    /** Tag + data access latency for hits (slice-local part). */
    std::uint32_t hitLatency = 30;
    /** Latency from tag miss to the DRAM queue. */
    std::uint32_t missLatency = 10;
    std::uint32_t mshrs = 64;
    std::uint32_t mshrTargets = 16;
    PacketFormat packet{};
    std::uint64_t seed = 1;
};

/** Per-slice statistics. */
struct LlcSliceStats
{
    std::uint64_t reads = 0;
    std::uint64_t readHits = 0;
    /** Subset of readHits served by merging into an in-flight miss. */
    std::uint64_t readMergedHits = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writes = 0;
    std::uint64_t writeHits = 0;
    /** Global atomic operations executed at this slice (ROP). */
    std::uint64_t atomics = 0;
    std::uint64_t responses = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t stallCycles = 0;
    /** Fills dropped by the bypass policy (no-allocate). */
    std::uint64_t bypasses = 0;

    std::uint64_t accesses() const { return reads + writes; }
    double
    readMissRate() const
    {
        return reads == 0 ? 0.0
                          : static_cast<double>(readMisses) /
                static_cast<double>(reads);
    }
};

/**
 * Observer invoked for every request processed by a slice (profiler
 * and sharing-tracker hook).
 */
using SliceAccessObserver = std::function<void(
    SliceId slice, Addr line_addr, SmId src, bool read_hit, bool is_read,
    Cycle now)>;

/** One memory-side LLC slice. */
class LlcSlice
{
  public:
    /** Maps an SM to its application (write-policy selection). */
    using AppOfFn = std::function<AppId(SmId)>;
    /** True if @p app currently runs the LLC write-through. */
    using WriteThroughFn = std::function<bool(AppId)>;

    LlcSlice(const LlcSliceParams &params, Network *net,
             MemorySystem *mem, AppOfFn app_of,
             WriteThroughFn write_through);

    /** Attach the profiler/tracker observer (may be empty). */
    void setObserver(SliceAccessObserver obs) { observer_ = std::move(obs); }

    /** Advance one cycle. */
    void tick(Cycle now);

    /** DRAM read completion for @p line_addr (routed by the system). */
    void onDramReply(Addr line_addr, Cycle now);

    /**
     * Queue a full write-back pass of all dirty lines (reconfiguration
     * shared -> private). Completion is visible via drained().
     */
    void startWritebackAll(Cycle now);

    /** Drop all lines (private -> shared transition, kernel flush). */
    void invalidateAll();

    /** True when no request, miss, reply or writeback is in flight. */
    bool drained() const;

    /**
     * Earliest cycle >= @p now whose tick() is not a no-op. A
     * stalled request (its retry touches tag recency), a pending
     * write-back and a waiting network request (both probe
     * reject-counting canAccept paths) pin the slice to `now`;
     * otherwise the delay queues' front ready cycles are exact.
     * kNoCycle when fully drained with nothing queued in the NoC.
     */
    Cycle nextEventCycle(Cycle now) const;

    const LlcSliceStats &stats() const { return stats_; }
    void clearStats() { stats_ = LlcSliceStats{}; }
    SliceId id() const { return params_.id; }
    const LlcSliceParams &params() const { return params_; }
    const TagArray &tags() const { return tags_; }

    /** Register per-slice statistics in @p set. */
    void registerStats(StatSet &set) const;

    /**
     * Serialize tags, MSHRs, the stalled request, the miss/reply/
     * write-back queues and statistics.
     */
    void saveCkpt(CkptWriter &w) const;

    /** Restore state written by saveCkpt(). */
    void loadCkpt(CkptReader &r);

  private:
    /** Pending read target: requesting SM (+ atomic flag). */
    struct ReadTarget
    {
        SmId sm;
        bool atomic = false;
    };

    friend void ckptValue(CkptWriter &w, const ReadTarget &t);
    friend void ckptValue(CkptReader &r, ReadTarget &t);

    /** Handle one incoming request; @return false to retry later. */
    bool process(const NocMessage &msg, Cycle now);

    /** Queue a read reply towards @p sm. */
    void queueReply(Addr line_addr, SmId sm, Cycle now, Cycle latency,
                    bool atomic = false);

    /**
     * Install a fill, possibly generating a write-back. @p src is the
     * SM whose primary miss fetched the line (bypass-policy context);
     * fills from bypass-eligible sources may be dropped instead.
     */
    void fillLine(Addr line_addr, Cycle now, SmId src);

    /** True if @p src's application may bypass fills at all. */
    bool bypassEligible(SmId src) const;

    LlcSliceParams params_;
    Network *net_;
    MemorySystem *mem_;
    AppOfFn appOf_;
    WriteThroughFn writeThrough_;
    SliceAccessObserver observer_;

    TagArray tags_;
    MshrFile<ReadTarget> mshrs_;

    /** Request that could not complete (resource stall). */
    std::optional<NocMessage> stalledReq_;
    /** Misses waiting out the miss latency before the DRAM queue. */
    DelayQueue<std::pair<Addr, bool>> missQueue_;
    /** Replies waiting out the hit/fill latency before injection. */
    DelayQueue<NocMessage> replyQueue_;
    /** Write-backs (dirty evictions + flush passes) towards DRAM. */
    std::deque<Addr> writebackQueue_;

    LlcSliceStats stats_;
};

/*
 * ReadTarget has tail padding after the bool, so raw pod()
 * serialization would leak indeterminate bytes into checkpoints;
 * encode field-wise.
 */
inline void
ckptValue(CkptWriter &w, const LlcSlice::ReadTarget &t)
{
    ckptFields(w, t.sm, t.atomic);
}

inline void
ckptValue(CkptReader &r, LlcSlice::ReadTarget &t)
{
    ckptFields(r, t.sm, t.atomic);
}

} // namespace amsc

#endif // AMSC_LLC_LLC_SLICE_HH
