#include "mem/address_mapping.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace amsc
{

namespace
{

/** splitmix64 finalizer: cheap, high-quality 64-bit mixing. */
std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

AddressMapping::AddressMapping(const MappingParams &params)
    : params_(params)
{
    if (!isPowerOfTwo(params_.numMcs) ||
        !isPowerOfTwo(params_.banksPerMc) ||
        !isPowerOfTwo(params_.linesPerRow) ||
        !isPowerOfTwo(params_.slicesPerMc)) {
        fatal("address mapping requires power-of-two geometry "
              "(mcs=%u banks=%u lines/row=%u slices/mc=%u)",
              params_.numMcs, params_.banksPerMc, params_.linesPerRow,
              params_.slicesPerMc);
    }
    colBits_ = floorLog2(params_.linesPerRow);
    mcBits_ = floorLog2(params_.numMcs);
    bankBits_ = floorLog2(params_.banksPerMc);
    sliceBits_ = floorLog2(params_.slicesPerMc);
}

DramCoord
AddressMapping::decode(Addr line_addr) const
{
    DramCoord c;
    c.col = static_cast<std::uint32_t>(
        line_addr & (params_.linesPerRow - 1));
    const Addr group = line_addr >> colBits_;

    switch (params_.scheme) {
      case MappingScheme::Pae: {
        // XOR-fold entropy from the entire row-group address into the
        // channel and bank selectors; the row id is the group itself.
        const std::uint64_t h = mix64(group);
        c.mc = static_cast<McId>(h & (params_.numMcs - 1));
        c.bank = static_cast<std::uint32_t>(
            (h >> 20) & (params_.banksPerMc - 1));
        c.row = group;
        break;
      }
      case MappingScheme::Hynix: {
        // Plain field extraction: [row | bank | mc | col].
        c.mc = static_cast<McId>(group & (params_.numMcs - 1));
        c.bank = static_cast<std::uint32_t>(
            (group >> mcBits_) & (params_.banksPerMc - 1));
        c.row = group >> (mcBits_ + bankBits_);
        break;
      }
    }
    return c;
}

std::uint32_t
AddressMapping::sliceWithinMc(Addr line_addr) const
{
    switch (params_.scheme) {
      case MappingScheme::Pae:
        // Line-granular hashed interleaving across the MC's slices;
        // a different multiplier stream than decode() decorrelates
        // slice choice from bank choice.
        return static_cast<std::uint32_t>(
            mix64(line_addr * 0x9e3779b97f4a7c15ULL + 1) &
            (params_.slicesPerMc - 1));
      case MappingScheme::Hynix:
        // Shares the bank-selector bits: slice load imbalance tracks
        // bank imbalance, as with datasheet-style mappings.
        return static_cast<std::uint32_t>(
            (line_addr >> (colBits_ + mcBits_)) &
            (params_.slicesPerMc - 1));
    }
    panic("unknown mapping scheme");
}

std::string
AddressMapping::schemeName(MappingScheme scheme)
{
    switch (scheme) {
      case MappingScheme::Pae:
        return "PAE";
      case MappingScheme::Hynix:
        return "Hynix";
    }
    return "?";
}

} // namespace amsc
