/**
 * @file
 * The DRAM subsystem: all memory controllers plus the address mapping.
 *
 * LLC slices hand line addresses to the memory system; it decodes the
 * DRAM coordinates, routes the request to the owning controller and
 * reports read completions back through a single callback carrying the
 * requester token.
 */

#ifndef AMSC_MEM_MEMORY_SYSTEM_HH
#define AMSC_MEM_MEMORY_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/address_mapping.hh"
#include "mem/memory_controller.hh"

namespace amsc
{

/** All memory partitions of the GPU. */
class MemorySystem
{
  public:
    using ReadCallback =
        std::function<void(Addr line_addr, std::uint64_t token,
                           Cycle now)>;

    /**
     * @param num_mcs  number of memory controllers.
     * @param dram     per-MC structural/timing parameters.
     * @param mapping  shared address mapping (owned by caller).
     * @param sched    per-MC scheduling policy (default FR-FCFS).
     */
    MemorySystem(std::uint32_t num_mcs, const DramParams &dram,
                 const AddressMapping &mapping,
                 MemSched sched = MemSched::FrFcfs);

    /** Set the read completion callback. */
    void setReadCallback(ReadCallback cb);

    /**
     * Install @p obs as the command observer of every controller,
     * fanning the per-MC McCommand streams into one callback tagged
     * with the owning MC id (obs/recorder.hh, test_mem_policy.cc
     * observes single controllers directly). Pass nullptr to clear.
     * Observer-only: attaching it does not change scheduling.
     */
    void
    setCommandObserver(std::function<void(McId, const McCommand &)> obs);

    /**
     * @return true if the owning MC of @p line_addr can accept.
     *
     * A refusal is counted in the owning controller's
     * queueFullRejects: the callers (LlcSlice miss/write-back issue)
     * retry every cycle, so the stat measures DRAM backpressure as
     * refused asks rather than a panic path that never survives.
     */
    bool canAccept(Addr line_addr);

    /**
     * Enqueue an access.
     * @pre canAccept(line_addr).
     */
    void access(Addr line_addr, bool is_write, std::uint64_t token,
                Cycle now);

    /** Advance all controllers one cycle. */
    void tick(Cycle now);

    /** True when all controllers are empty. */
    bool drained() const;

    /**
     * Earliest cycle >= @p now at which any controller's tick() is
     * not a no-op; kNoCycle when all are drained. Queued requests
     * pin their controller to `now` (issue eligibility changes
     * cycle by cycle); in-flight-only controllers report their
     * exact next completion, bounded by a due refresh.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        Cycle e = kNoCycle;
        for (const auto &mc : mcs_) {
            const Cycle me = mc->nextEventCycle(now);
            if (me <= now)
                return now;
            if (me < e)
                e = me;
        }
        return e;
    }

    std::uint32_t numMcs() const
    {
        return static_cast<std::uint32_t>(mcs_.size());
    }
    MemoryController &mc(McId id) { return *mcs_[id]; }
    const MemoryController &mc(McId id) const { return *mcs_[id]; }
    const AddressMapping &mapping() const { return mapping_; }

    /** Aggregate DRAM accesses (reads + writes) across all MCs. */
    std::uint64_t totalAccesses() const;

    /** Field-wise sum of every controller's statistics. */
    McStats aggregateStats() const;

    /** Register all controller statistics in @p set. */
    void registerStats(StatSet &set) const;

    /** Serialize every controller, in MC order. */
    void saveCkpt(CkptWriter &w) const;

    /** Restore state written by saveCkpt(). */
    void loadCkpt(CkptReader &r);

  private:
    const AddressMapping &mapping_;
    std::vector<std::unique_ptr<MemoryController>> mcs_;
    ReadCallback readCb_;
};

} // namespace amsc

#endif // AMSC_MEM_MEMORY_SYSTEM_HH
