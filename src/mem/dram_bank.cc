#include "mem/dram_bank.hh"

#include <algorithm>

namespace amsc
{

Cycle
DramBank::columnReadyAt(std::uint64_t row, Cycle now,
                        const BankIssueConstraints &c) const
{
    const Cycle t = std::max(now, busyUntil_);
    if (rowHit(row))
        return std::max(t, c.colEarliest);

    Cycle act_at;
    if (rowOpen_) {
        // Row conflict: precharge (respecting tRAS and write
        // recovery), then activate.
        const Cycle pre_at = prechargeReadyAt(t);
        act_at = std::max({pre_at + timings_.tRP,
                           lastActivate_ + timings_.tRC,
                           c.actEarliest});
    } else {
        // Bank closed: activate only (tRC from previous activate).
        act_at = std::max({t, lastActivate_ + timings_.tRC,
                           c.actEarliest});
    }
    return std::max(act_at + timings_.tRCD, c.colEarliest);
}

Cycle
DramBank::service(std::uint64_t row, bool is_write, Cycle now,
                  bool &rowhit, const BankIssueConstraints &c,
                  Cycle &act_at)
{
    (void)is_write; // read/write column timing is the caller's job
    rowhit = rowHit(row);
    act_at = kNoCycle;
    Cycle col_at;

    if (rowhit) {
        col_at = std::max({now, busyUntil_, c.colEarliest});
    } else if (rowOpen_) {
        const Cycle pre_at =
            prechargeReadyAt(std::max(now, busyUntil_));
        act_at = std::max({pre_at + timings_.tRP,
                           lastActivate_ + timings_.tRC,
                           c.actEarliest});
        lastActivate_ = act_at;
        col_at = std::max(act_at + timings_.tRCD, c.colEarliest);
    } else {
        act_at = std::max({std::max(now, busyUntil_),
                           lastActivate_ + timings_.tRC,
                           c.actEarliest});
        lastActivate_ = act_at;
        col_at = std::max(act_at + timings_.tRCD, c.colEarliest);
    }

    rowOpen_ = true;
    openRow_ = row;

    // The bank can take its next column command tCCD later. Write
    // recovery does NOT hold the column path: it gates precharge
    // only, via noteWriteRecovery().
    busyUntil_ = col_at + timings_.tCCD;
    return col_at;
}

} // namespace amsc
