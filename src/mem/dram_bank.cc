#include "mem/dram_bank.hh"

#include <algorithm>

namespace amsc
{

Cycle
DramBank::columnReadyAt(std::uint64_t row, Cycle now) const
{
    Cycle t = std::max(now, busyUntil_);
    if (rowHit(row))
        return t;

    if (rowOpen_) {
        // Row conflict: precharge (respecting tRAS), then activate.
        const Cycle pre_at =
            std::max(t, lastActivate_ + timings_.tRAS);
        const Cycle act_at = pre_at + timings_.tRP;
        return act_at + timings_.tRCD;
    }
    // Bank closed: activate only (tRC from previous activate).
    const Cycle act_at = std::max(t, lastActivate_ + timings_.tRC);
    return act_at + timings_.tRCD;
}

Cycle
DramBank::service(std::uint64_t row, bool is_write, Cycle now,
                  bool &rowhit)
{
    rowhit = rowHit(row);
    Cycle col_at;

    if (rowhit) {
        col_at = std::max(now, busyUntil_);
    } else if (rowOpen_) {
        const Cycle pre_at = std::max(std::max(now, busyUntil_),
                                      lastActivate_ + timings_.tRAS);
        const Cycle act_at = pre_at + timings_.tRP;
        lastActivate_ = act_at;
        col_at = act_at + timings_.tRCD;
    } else {
        const Cycle act_at = std::max(std::max(now, busyUntil_),
                                      lastActivate_ + timings_.tRC);
        lastActivate_ = act_at;
        col_at = act_at + timings_.tRCD;
    }

    rowOpen_ = true;
    openRow_ = row;

    // The bank can take its next column command tCCD later; a write
    // additionally holds the bank for the write recovery time.
    busyUntil_ = col_at + timings_.tCCD;
    if (is_write)
        busyUntil_ = std::max(busyUntil_, col_at + timings_.tWR);
    return col_at;
}

} // namespace amsc
