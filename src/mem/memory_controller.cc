#include "mem/memory_controller.hh"

#include <algorithm>
#include <cassert>

#include "common/log.hh"

namespace amsc
{

MemoryController::MemoryController(McId mc_id, const DramParams &params,
                                   MemSched sched)
    : id_(mc_id), params_(params), schedKind_(sched),
      sched_(MemSchedulerPolicy::create(sched, params.queueCapacity)),
      nextRefreshAt_(params.timings.tREFI)
{
    banks_.reserve(params_.banksPerMc);
    for (std::uint32_t b = 0; b < params_.banksPerMc; ++b)
        banks_.emplace_back(params_.timings);
    queue_.reserve(params_.queueCapacity);
    groupColAt_.assign(params_.bankGroups, 0);
    groupColValid_.assign(params_.bankGroups, 0);
}

void
MemoryController::enqueue(DramRequest req, Cycle now)
{
    if (!canAccept())
        panic("MC%u enqueue beyond capacity", id_);
    if (req.bank >= params_.banksPerMc)
        panic("MC%u request for bank %u of %u", id_, req.bank,
              params_.banksPerMc);
    req.enqueueCycle = now;
    queue_.push_back(req);
}

Cycle
MemoryController::actEarliest() const
{
    Cycle earliest = 0;
    if (actCount_ > 0) {
        // tRRD from the most recent ACT to any bank of this device.
        const std::size_t newest = (actWindowPos_ + 3) % 4;
        earliest = actWindow_[newest] + params_.timings.tRRD;
    }
    if (params_.timings.tFAW != 0 && actCount_ >= 4) {
        // Four-activate window: this (5th-from-oldest) ACT must not
        // start before the oldest of the last 4 plus tFAW.
        const Cycle faw = actWindow_[actWindowPos_] +
            params_.timings.tFAW;
        earliest = std::max(earliest, faw);
    }
    return earliest;
}

void
MemoryController::recordActivate(Cycle at)
{
    actWindow_[actWindowPos_] = at;
    actWindowPos_ = (actWindowPos_ + 1) % 4;
    ++actCount_;
}

bool
MemoryController::refreshPending(Cycle now) const
{
    return params_.timings.tREFI != 0 && now >= nextRefreshAt_ &&
        pendingRequests() > 0;
}

void
MemoryController::tick(Cycle now)
{
    // 1. Fire completed reads (writes complete silently).
    for (std::size_t i = 0; i < inFlight_.size();) {
        if (inFlight_[i].completeAt <= now) {
            const InFlight done = inFlight_[i];
            inFlight_[i] = inFlight_.back();
            inFlight_.pop_back();
            if (!done.req.isWrite) {
                stats_.totalReadLatency +=
                    done.completeAt - done.req.enqueueCycle;
                if (readCb_)
                    readCb_(done.req, now);
            }
        } else {
            ++i;
        }
    }

    // 2. All-bank refresh: once due, block new issues until every
    //    bank's column pipeline is idle, then close all rows and hold
    //    the banks for tRFC. Only charged while work is pending --
    //    idle-period refreshes would delay nothing and skipping them
    //    keeps fast-forward bit-exact (see file header).
    if (refreshPending(now)) {
        // The implicit all-bank precharge must itself be legal:
        // tRAS since each open row's activate, write recovery done.
        bool all_ready = true;
        for (const DramBank &b : banks_) {
            if (!b.refreshReady(now)) {
                all_ready = false;
                break;
            }
        }
        if (all_ready) {
            for (DramBank &b : banks_)
                b.refresh(now);
            ++stats_.refreshes;
            McCommand cmd;
            cmd.kind = McCommand::Kind::Refresh;
            cmd.at = now;
            observe(cmd);
            nextRefreshAt_ = now + params_.timings.tREFI;
        }
        return; // nothing issues while a refresh is pending/starting
    }

    // 3. Scheduler pick: at most one request per cycle.
    if (queue_.empty())
        return;
    const std::size_t pick =
        sched_->pick(McPickView{queue_, banks_, now});
    stats_.writeDrainEntries = sched_->drainEntries();
    if (pick == MemSchedulerPolicy::kNoPick)
        return; // nothing issueable this cycle
    assert(pick < queue_.size());

    const DramRequest req = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    issue(req, now);
}

void
MemoryController::issue(const DramRequest &req, Cycle now)
{
    const DramTimings &t = params_.timings;

    BankIssueConstraints c;
    c.actEarliest = actEarliest();
    if (!req.isWrite && anyWrite_) {
        // Write-to-read bus turnaround: the read column command must
        // trail the last write data by tWTR.
        c.colEarliest = lastWdataEnd_ + t.tWTR;
    }
    if (params_.bankGroups > 1 && anyCol_) {
        // Any two column commands are tCCD_S apart; two to the SAME
        // group are tCCD_L apart -- even with other groups' commands
        // in between, so the same-group bound tracks per group.
        const std::uint32_t group = params_.groupOf(req.bank);
        c.colEarliest =
            std::max(c.colEarliest, lastColAt_ + t.tCCD_S);
        if (groupColValid_[group]) {
            c.colEarliest = std::max(
                c.colEarliest, groupColAt_[group] + t.tCCD_L);
        }
    }

    bool rowhit = false;
    Cycle act_at = kNoCycle;
    const Cycle col_at = banks_[req.bank].service(
        req.row, req.isWrite, now, rowhit, c, act_at);
    if (act_at != kNoCycle) {
        recordActivate(act_at);
        McCommand cmd;
        cmd.kind = McCommand::Kind::Activate;
        cmd.bank = req.bank;
        cmd.row = req.row;
        cmd.at = act_at;
        observe(cmd);
    }
    if (rowhit)
        ++stats_.rowHits;
    else
        ++stats_.rowMisses;

    // Data transfer: reads deliver data tCL after the column command,
    // writes receive theirs tCWL after; the burst then occupies the
    // shared data bus.
    const std::uint32_t burst = params_.burstCycles();
    Cycle data_start = col_at + (req.isWrite ? t.tCWL : t.tCL);
    data_start = std::max(data_start, busFreeAt_);
    busFreeAt_ = data_start + burst;
    stats_.busBusyCycles += burst;

    if (req.isWrite) {
        lastWdataEnd_ = data_start + burst;
        anyWrite_ = true;
        // Write recovery gates the *precharge* of this bank.
        banks_[req.bank].noteWriteRecovery(data_start + burst);
    }
    if (params_.bankGroups > 1) {
        const std::uint32_t group = params_.groupOf(req.bank);
        lastColAt_ = col_at;
        groupColAt_[group] = col_at;
        groupColValid_[group] = 1;
        anyCol_ = true;
    }

    if (cmdObserver_) {
        McCommand cmd;
        cmd.kind = req.isWrite ? McCommand::Kind::Write
                               : McCommand::Kind::Read;
        cmd.bank = req.bank;
        cmd.row = req.row;
        cmd.at = col_at;
        cmd.dataStart = data_start;
        cmd.dataEnd = data_start + burst;
        observe(cmd);
    }

    InFlight f;
    f.req = req;
    f.completeAt = data_start + burst;
    inFlight_.push_back(f);

    if (req.isWrite)
        ++stats_.writes;
    else
        ++stats_.reads;
}

void
MemoryController::registerStats(StatSet &set) const
{
    const std::string p = "mc" + std::to_string(id_);
    set.addCounter(p + ".reads", "read requests serviced",
                   stats_.reads);
    set.addCounter(p + ".writes", "write requests serviced",
                   stats_.writes);
    set.addCounter(p + ".row_hits", "row-buffer hits", stats_.rowHits);
    set.addCounter(p + ".row_misses", "row-buffer misses",
                   stats_.rowMisses);
    set.addCounter(p + ".bus_busy_cycles", "data-bus busy cycles",
                   stats_.busBusyCycles);
    set.addCounter(p + ".refreshes", "all-bank refreshes performed",
                   stats_.refreshes);
    set.addCounter(p + ".queue_full_rejects",
                   "requests refused by a full queue (backpressure)",
                   stats_.queueFullRejects);
    set.addCounter(p + ".write_drain_entries",
                   "write-drain mode entries (mem_sched=write_drain)",
                   stats_.writeDrainEntries);
    const McStats *s = &stats_;
    set.add(p + ".row_hit_rate", "row-buffer hit rate",
            [s]() { return s->rowHitRate(); });
    set.add(p + ".avg_read_latency", "average read latency (cycles)",
            [s]() { return s->avgReadLatency(); });
}

void
MemoryController::saveCkpt(CkptWriter &w) const
{
    ckptValue(w, queue_);
    w.varint(inFlight_.size());
    for (const InFlight &f : inFlight_) {
        ckptValue(w, f.req);
        w.u64(f.completeAt);
    }
    for (const DramBank &b : banks_)
        b.saveCkpt(w);
    w.u64(busFreeAt_);
    for (const Cycle act : actWindow_)
        w.u64(act);
    w.varint(actWindowPos_);
    w.u64(actCount_);
    w.u64(lastWdataEnd_);
    w.b(anyWrite_);
    w.u64(lastColAt_);
    w.podVec(groupColAt_);
    w.podVec(groupColValid_);
    w.b(anyCol_);
    w.u64(nextRefreshAt_);
    sched_->saveCkpt(w);
    w.pod(stats_);
}

void
MemoryController::loadCkpt(CkptReader &r)
{
    ckptValue(r, queue_);
    if (queue_.size() > params_.queueCapacity)
        r.fail("memory controller queue overflow");
    inFlight_.clear();
    const std::uint64_t n = r.varint();
    for (std::uint64_t i = 0; i < n; ++i) {
        InFlight f{};
        ckptValue(r, f.req);
        f.completeAt = r.u64();
        inFlight_.push_back(f);
    }
    for (DramBank &b : banks_)
        b.loadCkpt(r);
    busFreeAt_ = r.u64();
    for (Cycle &act : actWindow_)
        act = r.u64();
    actWindowPos_ = static_cast<std::size_t>(r.varint());
    if (actWindowPos_ >= 4)
        r.fail("tFAW window position out of range");
    actCount_ = r.u64();
    lastWdataEnd_ = r.u64();
    anyWrite_ = r.b();
    lastColAt_ = r.u64();
    const std::size_t groups = groupColAt_.size();
    r.podVec(groupColAt_);
    r.podVec(groupColValid_);
    if (groupColAt_.size() != groups ||
        groupColValid_.size() != groups)
        r.fail("bank-group geometry mismatch");
    anyCol_ = r.b();
    nextRefreshAt_ = r.u64();
    sched_->loadCkpt(r);
    r.pod(stats_);
}

} // namespace amsc
