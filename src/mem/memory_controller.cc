#include "mem/memory_controller.hh"

#include <algorithm>
#include <cassert>

#include "common/log.hh"

namespace amsc
{

MemoryController::MemoryController(McId mc_id, const DramParams &params)
    : id_(mc_id), params_(params)
{
    banks_.reserve(params_.banksPerMc);
    for (std::uint32_t b = 0; b < params_.banksPerMc; ++b)
        banks_.emplace_back(params_.timings);
    queue_.reserve(params_.queueCapacity);
}

void
MemoryController::enqueue(DramRequest req, Cycle now)
{
    if (!canAccept()) {
        ++stats_.queueFullRejects;
        panic("MC%u enqueue beyond capacity", id_);
    }
    if (req.bank >= params_.banksPerMc)
        panic("MC%u request for bank %u of %u", id_, req.bank,
              params_.banksPerMc);
    req.enqueueCycle = now;
    queue_.push_back(req);
}

void
MemoryController::tick(Cycle now)
{
    // 1. Fire completed reads (writes complete silently).
    for (std::size_t i = 0; i < inFlight_.size();) {
        if (inFlight_[i].completeAt <= now) {
            const InFlight done = inFlight_[i];
            inFlight_[i] = inFlight_.back();
            inFlight_.pop_back();
            if (!done.req.isWrite) {
                stats_.totalReadLatency +=
                    done.completeAt - done.req.enqueueCycle;
                if (readCb_)
                    readCb_(done.req, now);
            }
        } else {
            ++i;
        }
    }

    // 2. FR-FCFS: pick a row hit on an idle bank (oldest first); if
    //    none, pick the oldest request whose bank is idle.
    if (queue_.empty())
        return;

    std::size_t pick = queue_.size();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        const DramRequest &r = queue_[i];
        const DramBank &bank = banks_[r.bank];
        if (bank.idleAt(now) && bank.rowHit(r.row)) {
            pick = i;
            break;
        }
    }
    if (pick == queue_.size()) {
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            if (banks_[queue_[i].bank].idleAt(now)) {
                pick = i;
                break;
            }
        }
    }
    if (pick == queue_.size())
        return; // all banks busy this cycle

    DramRequest req = queue_[pick];
    queue_.erase(queue_.begin() +
                 static_cast<std::ptrdiff_t>(pick));

    bool rowhit = false;
    const Cycle col_at = banks_[req.bank].service(req.row, req.isWrite,
                                                  now, rowhit);
    if (rowhit)
        ++stats_.rowHits;
    else
        ++stats_.rowMisses;

    // Data transfer: reads deliver data tCL after the column command;
    // the burst then occupies the shared data bus.
    const std::uint32_t burst = params_.burstCycles();
    Cycle data_start = col_at;
    if (!req.isWrite)
        data_start += params_.timings.tCL;
    data_start = std::max(data_start, busFreeAt_);
    busFreeAt_ = data_start + burst;
    stats_.busBusyCycles += burst;

    InFlight f;
    f.req = req;
    f.completeAt = data_start + burst;
    inFlight_.push_back(f);

    if (req.isWrite)
        ++stats_.writes;
    else
        ++stats_.reads;
}

void
MemoryController::registerStats(StatSet &set) const
{
    const std::string p = "mc" + std::to_string(id_);
    set.addCounter(p + ".reads", "read requests serviced",
                   stats_.reads);
    set.addCounter(p + ".writes", "write requests serviced",
                   stats_.writes);
    set.addCounter(p + ".row_hits", "row-buffer hits", stats_.rowHits);
    set.addCounter(p + ".row_misses", "row-buffer misses",
                   stats_.rowMisses);
    set.addCounter(p + ".bus_busy_cycles", "data-bus busy cycles",
                   stats_.busBusyCycles);
    const McStats *s = &stats_;
    set.add(p + ".row_hit_rate", "row-buffer hit rate",
            [s]() { return s->rowHitRate(); });
    set.add(p + ".avg_read_latency", "average read latency (cycles)",
            [s]() { return s->avgReadLatency(); });
}

} // namespace amsc
