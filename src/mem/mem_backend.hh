/**
 * @file
 * Memory-technology backend presets.
 *
 * `mem_backend` turns the memory technology into a sweep axis: one
 * key re-parameterizes the whole DRAM timing/structure block
 * (docs/DESIGN.md, "Memory backend", preset table). The presets are
 * representative technology points expressed in 1400 MHz core
 * cycles, not datasheet transcriptions:
 *
 *  - gddr5  the paper's Table-1 baseline. Identical to the SimConfig
 *           defaults, so `mem_backend=gddr5` is a no-op (pinned by
 *           tests/test_mem_policy.cc).
 *  - hbm2   stacked DRAM: 4 bank groups with tCCD_L/tCCD_S column
 *           spacing, twice the banks (pseudo-channel pairs), shorter
 *           core timings, smaller rows.
 *  - scm    storage-class memory in the STT-MRAM/SCM mold (FUSE;
 *           bandwidth-effective DRAM cache for GPUs with SCM):
 *           read latency close to DRAM, writes several times more
 *           expensive (long write-recovery pulse), no refresh
 *           (non-volatile), slow row cycling.
 *
 * Individual dram_* keys applied after the preset override single
 * fields, so "hbm2 but with tRRD=8" is expressible.
 */

#ifndef AMSC_MEM_MEM_BACKEND_HH
#define AMSC_MEM_MEM_BACKEND_HH

#include <cstdint>
#include <string>

#include "mem/dram_timing.hh"

namespace amsc
{

/** Memory technology selector. */
enum class MemBackend
{
    Gddr5,
    Hbm2,
    Scm,
};

/** Parse a backend name (gddr5|hbm2|scm). */
MemBackend parseMemBackend(const std::string &name);

/** Backend key=value spelling. */
std::string memBackendName(MemBackend b);

/**
 * The memory-layer parameter block one backend preset controls:
 * everything technology-specific, nothing that touches the LLC or
 * NoC geometry (channel count stays a separate structural knob).
 */
struct MemBackendPreset
{
    DramTimings timings{};
    std::uint32_t banksPerMc = 16;
    std::uint32_t bankGroups = 1;
    std::uint32_t busBytesPerCycle = 80;
    std::uint32_t rowBytes = 2048;
};

/** Preset parameter block of @p backend. */
const MemBackendPreset &memBackendPreset(MemBackend backend);

} // namespace amsc

#endif // AMSC_MEM_MEM_BACKEND_HH
