#include "mem/memory_system.hh"

#include "common/log.hh"

namespace amsc
{

MemorySystem::MemorySystem(std::uint32_t num_mcs,
                           const DramParams &dram,
                           const AddressMapping &mapping,
                           MemSched sched)
    : mapping_(mapping)
{
    if (num_mcs != mapping.params().numMcs)
        fatal("memory system MC count %u != mapping MC count %u",
              num_mcs, mapping.params().numMcs);
    mcs_.reserve(num_mcs);
    for (McId i = 0; i < num_mcs; ++i)
        mcs_.push_back(
            std::make_unique<MemoryController>(i, dram, sched));
}

void
MemorySystem::setReadCallback(ReadCallback cb)
{
    readCb_ = std::move(cb);
    for (auto &mc : mcs_) {
        mc->setReadCallback(
            [this](const DramRequest &req, Cycle now) {
                if (readCb_)
                    readCb_(req.lineAddr, req.token, now);
            });
    }
}

void
MemorySystem::setCommandObserver(
    std::function<void(McId, const McCommand &)> obs)
{
    for (auto &mc : mcs_) {
        if (!obs) {
            mc->setCommandObserver(nullptr);
            continue;
        }
        const McId id = mc->id();
        mc->setCommandObserver(
            [obs, id](const McCommand &cmd) { obs(id, cmd); });
    }
}

bool
MemorySystem::canAccept(Addr line_addr)
{
    const DramCoord c = mapping_.decode(line_addr);
    if (mcs_[c.mc]->canAccept())
        return true;
    mcs_[c.mc]->noteQueueFullReject();
    return false;
}

void
MemorySystem::access(Addr line_addr, bool is_write,
                     std::uint64_t token, Cycle now)
{
    const DramCoord c = mapping_.decode(line_addr);
    DramRequest req;
    req.lineAddr = line_addr;
    req.bank = c.bank;
    req.row = c.row;
    req.isWrite = is_write;
    req.token = token;
    mcs_[c.mc]->enqueue(req, now);
}

void
MemorySystem::tick(Cycle now)
{
    for (auto &mc : mcs_)
        mc->tick(now);
}

bool
MemorySystem::drained() const
{
    for (const auto &mc : mcs_) {
        if (!mc->drained())
            return false;
    }
    return true;
}

std::uint64_t
MemorySystem::totalAccesses() const
{
    std::uint64_t n = 0;
    for (const auto &mc : mcs_)
        n += mc->stats().reads + mc->stats().writes;
    return n;
}

McStats
MemorySystem::aggregateStats() const
{
    McStats agg;
    for (const auto &mc : mcs_) {
        const McStats &s = mc->stats();
        agg.reads += s.reads;
        agg.writes += s.writes;
        agg.rowHits += s.rowHits;
        agg.rowMisses += s.rowMisses;
        agg.busBusyCycles += s.busBusyCycles;
        agg.queueFullRejects += s.queueFullRejects;
        agg.totalReadLatency += s.totalReadLatency;
        agg.refreshes += s.refreshes;
        agg.writeDrainEntries += s.writeDrainEntries;
    }
    return agg;
}

void
MemorySystem::registerStats(StatSet &set) const
{
    for (const auto &mc : mcs_)
        mc->registerStats(set);
}

void
MemorySystem::saveCkpt(CkptWriter &w) const
{
    for (const auto &mc : mcs_)
        mc->saveCkpt(w);
}

void
MemorySystem::loadCkpt(CkptReader &r)
{
    for (auto &mc : mcs_)
        mc->loadCkpt(r);
}

} // namespace amsc
