#include "mem/mem_backend.hh"

#include "common/error.hh"
#include "common/log.hh"

namespace amsc
{

MemBackend
parseMemBackend(const std::string &name)
{
    if (name == "gddr5")
        return MemBackend::Gddr5;
    if (name == "hbm2")
        return MemBackend::Hbm2;
    if (name == "scm")
        return MemBackend::Scm;
    throw ConfigError(strfmt("unknown memory backend '%s' (gddr5|hbm2|scm)",
                             name.c_str()));
}

std::string
memBackendName(MemBackend b)
{
    switch (b) {
      case MemBackend::Gddr5:
        return "gddr5";
      case MemBackend::Hbm2:
        return "hbm2";
      case MemBackend::Scm:
        return "scm";
    }
    return "?";
}

namespace
{

MemBackendPreset
gddr5Preset()
{
    // Exactly the SimConfig/DramTimings defaults (Table 1), so the
    // default configuration and mem_backend=gddr5 are the same run.
    return MemBackendPreset{};
}

MemBackendPreset
hbm2Preset()
{
    MemBackendPreset p;
    p.timings.tCL = 10;
    p.timings.tCWL = 8;
    p.timings.tRP = 10;
    p.timings.tRC = 34;
    p.timings.tRAS = 24;
    p.timings.tRCD = 10;
    p.timings.tRRD = 4;
    p.timings.tFAW = 16;
    p.timings.tCCD = 2;
    p.timings.tCCD_L = 4;
    p.timings.tCCD_S = 2;
    p.timings.tWR = 11;
    p.timings.tWTR = 5;
    p.timings.tREFI = 5460;
    p.timings.tRFC = 240; // taller stacks refresh longer
    p.banksPerMc = 32;    // 2 pseudo-channels x 16 banks
    p.bankGroups = 4;
    p.busBytesPerCycle = 80;
    p.rowBytes = 1024;
    return p;
}

MemBackendPreset
scmPreset()
{
    MemBackendPreset p;
    p.timings.tCL = 14;
    p.timings.tCWL = 10;
    p.timings.tRP = 8;    // no destructive row read to restore
    p.timings.tRC = 100;  // slow cell cycling
    p.timings.tRAS = 36;
    p.timings.tRCD = 18;  // slower sensing than DRAM
    p.timings.tRRD = 4;
    p.timings.tFAW = 0;   // no activation-power window
    p.timings.tCCD = 2;
    p.timings.tCCD_L = 4;
    p.timings.tCCD_S = 2;
    p.timings.tWR = 80;   // long write pulse: the R/W asymmetry
    p.timings.tWTR = 12;
    p.timings.tREFI = 0;  // non-volatile: no refresh
    p.timings.tRFC = 0;
    p.banksPerMc = 16;
    p.bankGroups = 1;
    p.busBytesPerCycle = 80;
    p.rowBytes = 2048;
    return p;
}

} // namespace

const MemBackendPreset &
memBackendPreset(MemBackend backend)
{
    static const MemBackendPreset gddr5 = gddr5Preset();
    static const MemBackendPreset hbm2 = hbm2Preset();
    static const MemBackendPreset scm = scmPreset();
    switch (backend) {
      case MemBackend::Gddr5:
        return gddr5;
      case MemBackend::Hbm2:
        return hbm2;
      case MemBackend::Scm:
        return scm;
    }
    panic("unknown memory backend");
}

} // namespace amsc
