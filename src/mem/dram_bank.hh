/**
 * @file
 * Single DRAM bank state machine.
 *
 * Tracks the open row and the earliest cycles at which the next
 * activate / column command / precharge may legally issue given the
 * GDDR5 timing constraints. The controller consults serviceLatency()
 * for FR-FCFS arbitration and then commits a request with service().
 */

#ifndef AMSC_MEM_DRAM_BANK_HH
#define AMSC_MEM_DRAM_BANK_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/dram_timing.hh"

namespace amsc
{

/** One GDDR5 bank with open-row policy. */
class DramBank
{
  public:
    explicit DramBank(const DramTimings &timings)
        : timings_(timings)
    {}

    /** @return true if @p row is currently open. */
    bool
    rowHit(std::uint64_t row) const
    {
        return rowOpen_ && openRow_ == row;
    }

    /** @return true if any row is open. */
    bool rowOpen() const { return rowOpen_; }

    /** @return true once prior service completed by cycle @p now. */
    bool idleAt(Cycle now) const { return busyUntil_ <= now; }

    /** Earliest cycle the bank can begin serving a new request. */
    Cycle readyAt() const { return busyUntil_; }

    /**
     * Cycles from @p now until the *column command* for @p row could
     * issue, including any needed precharge/activate. Used by FR-FCFS
     * to rank candidate requests. Does not change state.
     */
    Cycle columnReadyAt(std::uint64_t row, Cycle now) const;

    /**
     * Begin servicing an access to @p row at cycle @p now.
     *
     * Advances the bank through (PRE,) (ACT,) RD/WR as needed and
     * returns the cycle the column command issues. The caller adds
     * tCL/burst cycles for data timing and enforces bus contention.
     *
     * @param row      target row.
     * @param is_write write access (affects recovery time).
     * @param now      current cycle; must satisfy idleAt(now).
     * @param rowhit   out: whether this was a row-buffer hit.
     */
    Cycle service(std::uint64_t row, bool is_write, Cycle now,
                  bool &rowhit);

    /** Most recent activate cycle (for cross-bank tRRD checks). */
    Cycle lastActivateAt() const { return lastActivate_; }

  private:
    const DramTimings &timings_;
    bool rowOpen_ = false;
    std::uint64_t openRow_ = 0;
    /** Bank cannot accept a new service before this cycle. */
    Cycle busyUntil_ = 0;
    /** Cycle of the most recent ACT command. */
    Cycle lastActivate_ = 0;
};

} // namespace amsc

#endif // AMSC_MEM_DRAM_BANK_HH
