/**
 * @file
 * Single DRAM bank state machine.
 *
 * Tracks the open row and the earliest cycles at which the next
 * activate / column command / precharge may legally issue given the
 * bank-local timing constraints (tRC, tRAS, tRP, tRCD, tCCD, tWR).
 * Constraints that live at controller scope -- tRRD/tFAW activation
 * windows, write-to-read turnaround, bank-group column spacing --
 * are passed in as lower bounds (BankIssueConstraints) so the bank
 * folds them into the same PRE/ACT/column schedule. The controller
 * commits a request with service(); columnReadyAt() is the
 * state-free preview of the same schedule (pinned preview ==
 * service in tests/test_mem.cc).
 *
 * Write recovery (tWR) gates *precharge*, not the next column
 * command: after a write, the bank accepts further column commands
 * tCCD later, but cannot close the row before the write data has
 * been restored (noteWriteRecovery()).
 */

#ifndef AMSC_MEM_DRAM_BANK_HH
#define AMSC_MEM_DRAM_BANK_HH

#include <cstdint>

#include "common/ckpt.hh"
#include "common/types.hh"
#include "mem/dram_timing.hh"

namespace amsc
{

/**
 * Controller-scope lower bounds folded into one bank service
 * decision. Zero means "does not bind".
 */
struct BankIssueConstraints
{
    /** Earliest cycle an ACT may issue (tRRD/tFAW/refresh window). */
    Cycle actEarliest = 0;
    /** Earliest cycle the column command may issue (tWTR, tCCD_L/S). */
    Cycle colEarliest = 0;
};

/** One DRAM bank with open-row policy. */
class DramBank
{
  public:
    explicit DramBank(const DramTimings &timings)
        : timings_(timings)
    {}

    /** @return true if @p row is currently open. */
    bool
    rowHit(std::uint64_t row) const
    {
        return rowOpen_ && openRow_ == row;
    }

    /** @return true if any row is open. */
    bool rowOpen() const { return rowOpen_; }

    /** @return true once prior service completed by cycle @p now. */
    bool idleAt(Cycle now) const { return busyUntil_ <= now; }

    /** Earliest cycle the bank can begin serving a new request. */
    Cycle readyAt() const { return busyUntil_; }

    /**
     * Cycles from @p now until the *column command* for @p row could
     * issue, including any needed precharge/activate: the state-free
     * preview of service(). The shipped schedulers rank via
     * idleAt()/rowHit() only; this exists for ready-time-aware
     * policies and the unit tests that pin preview == service.
     */
    Cycle columnReadyAt(std::uint64_t row, Cycle now,
                        const BankIssueConstraints &c = {}) const;

    /**
     * Begin servicing an access to @p row at cycle @p now.
     *
     * Advances the bank through (PRE,) (ACT,) RD/WR as needed and
     * returns the cycle the column command issues. The caller adds
     * tCL/tCWL and burst cycles for data timing, enforces bus
     * contention, and reports the write-data completion back through
     * noteWriteRecovery() so tWR can gate the next precharge.
     *
     * @param row      target row.
     * @param is_write write access.
     * @param now      current cycle; must satisfy idleAt(now).
     * @param rowhit   out: whether this was a row-buffer hit.
     * @param c        controller-scope ACT/column lower bounds.
     * @param act_at   out: cycle the ACT issued, kNoCycle if none.
     */
    Cycle service(std::uint64_t row, bool is_write, Cycle now,
                  bool &rowhit, const BankIssueConstraints &c,
                  Cycle &act_at);

    /** service() without controller-scope constraints (unit tests). */
    Cycle
    service(std::uint64_t row, bool is_write, Cycle now, bool &rowhit)
    {
        Cycle act_at = kNoCycle;
        return service(row, is_write, now, rowhit, {}, act_at);
    }

    /**
     * Record that a write burst to this bank finishes restoring at
     * @p wdata_end: the row cannot be precharged before
     * wdata_end + tWR.
     */
    void
    noteWriteRecovery(Cycle wdata_end)
    {
        const Cycle until = wdata_end + timings_.tWR;
        if (until > preReadyAt_)
            preReadyAt_ = until;
    }

    /**
     * True when a refresh may start at @p now: no column command
     * outstanding, and -- if a row is open -- its implicit precharge
     * is legal (tRAS satisfied, write recovery complete).
     */
    bool
    refreshReady(Cycle now) const
    {
        if (!idleAt(now))
            return false;
        return !rowOpen_ ||
            (lastActivate_ + timings_.tRAS <= now &&
             preReadyAt_ <= now);
    }

    /**
     * All-bank refresh participation starting at @p now: the open row
     * is closed and the bank is blocked for tRFC.
     * @pre refreshReady(now).
     */
    void
    refresh(Cycle now)
    {
        rowOpen_ = false;
        const Cycle until = now + timings_.tRFC;
        if (until > busyUntil_)
            busyUntil_ = until;
    }

    /** Most recent activate cycle (for cross-bank tRRD checks). */
    Cycle lastActivateAt() const { return lastActivate_; }

    /** Serialize the bank state machine (timings are structural). */
    void
    saveCkpt(CkptWriter &w) const
    {
        w.b(rowOpen_);
        w.u64(openRow_);
        w.u64(busyUntil_);
        w.u64(lastActivate_);
        w.u64(preReadyAt_);
    }

    /** Restore state written by saveCkpt(). */
    void
    loadCkpt(CkptReader &r)
    {
        rowOpen_ = r.b();
        openRow_ = r.u64();
        busyUntil_ = r.u64();
        lastActivate_ = r.u64();
        preReadyAt_ = r.u64();
    }

  private:
    /** Earliest precharge honouring tRAS and write recovery. */
    Cycle
    prechargeReadyAt(Cycle t) const
    {
        Cycle pre = lastActivate_ + timings_.tRAS;
        if (preReadyAt_ > pre)
            pre = preReadyAt_;
        return pre > t ? pre : t;
    }

    const DramTimings &timings_;
    bool rowOpen_ = false;
    std::uint64_t openRow_ = 0;
    /** Bank cannot accept a new column command before this cycle. */
    Cycle busyUntil_ = 0;
    /** Cycle of the most recent ACT command. */
    Cycle lastActivate_ = 0;
    /** Precharge blocked until this cycle (write recovery, tWR). */
    Cycle preReadyAt_ = 0;
};

} // namespace amsc

#endif // AMSC_MEM_DRAM_BANK_HH
