/**
 * @file
 * Physical address mapping schemes (paper sections 5 and 6.4).
 *
 * The mapping decides, for each 128 B line, which memory controller
 * (memory partition), DRAM bank and row serve it, and -- for the shared
 * LLC organization -- which slice within the controller caches it.
 *
 * Two schemes are modeled:
 *
 *  - PAE ("page address entropy", Liu et al., ISCA 2018): XOR-folds
 *    high-order address bits into the channel/bank/slice selector bits,
 *    uniformly distributing requests. This is the paper's default.
 *  - Hynix (datasheet-style linear extraction): plain bit slicing.
 *    Strided access patterns alias onto few channels/banks, creating
 *    the imbalance the paper uses in its sensitivity study.
 *
 * Addresses everywhere in this file are line addresses (byte address /
 * lineBytes).
 *
 * The bank selector produced here also decides the bank *group* when
 * the backend models them (DramParams::groupOf interleaves groups
 * over the low bank bits), so PAE's hashed bank bits naturally
 * alternate groups -- the tCCD_S fast path -- while Hynix's linear
 * extraction makes strided patterns stick to one group.
 */

#ifndef AMSC_MEM_ADDRESS_MAPPING_HH
#define AMSC_MEM_ADDRESS_MAPPING_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace amsc
{

/** Address-mapping scheme selector. */
enum class MappingScheme
{
    Pae,
    Hynix,
};

/** DRAM coordinates of a line. */
struct DramCoord
{
    McId mc = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    std::uint32_t col = 0;
};

/** Parameters of the address mapping. */
struct MappingParams
{
    MappingScheme scheme = MappingScheme::Pae;
    std::uint32_t numMcs = 8;
    std::uint32_t banksPerMc = 16;
    std::uint32_t linesPerRow = 16;
    std::uint32_t slicesPerMc = 8;
};

/** Translates line addresses to DRAM coordinates and LLC slices. */
class AddressMapping
{
  public:
    explicit AddressMapping(const MappingParams &params);

    /** Decode DRAM coordinates for @p line_addr. */
    DramCoord decode(Addr line_addr) const;

    /**
     * Slice within the owning MC that caches @p line_addr under the
     * *shared* LLC organization. (Under the private organization the
     * slice is the requester's cluster id instead.)
     */
    std::uint32_t sliceWithinMc(Addr line_addr) const;

    /** Global shared-mode slice id = mc * slicesPerMc + slice. */
    SliceId
    sharedGlobalSlice(Addr line_addr) const
    {
        return decode(line_addr).mc * params_.slicesPerMc +
            sliceWithinMc(line_addr);
    }

    const MappingParams &params() const { return params_; }

    /** Human-readable scheme name. */
    static std::string schemeName(MappingScheme scheme);

  private:
    MappingParams params_;
    unsigned colBits_;
    unsigned mcBits_;
    unsigned bankBits_;
    unsigned sliceBits_;
};

} // namespace amsc

#endif // AMSC_MEM_ADDRESS_MAPPING_HH
