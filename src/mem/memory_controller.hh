/**
 * @file
 * FR-FCFS memory controller (Table 1: FR-FCFS, 16 banks/MC).
 *
 * Requests wait in a bounded queue. Each cycle the controller selects
 * at most one request with first-ready, first-come-first-served
 * priority: row-buffer hits to ready banks win; among equals, the
 * oldest request wins. Data transfers serialize on the per-MC data
 * bus. Read completions are announced through a callback; writes
 * complete silently (the LLC is the point of write acknowledgment).
 */

#ifndef AMSC_MEM_MEMORY_CONTROLLER_HH
#define AMSC_MEM_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/dram_bank.hh"
#include "mem/dram_timing.hh"

namespace amsc
{

/** One request as seen by a memory controller. */
struct DramRequest
{
    Addr lineAddr = kNoAddr;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    bool isWrite = false;
    /** Opaque requester context (returned in the completion). */
    std::uint64_t token = 0;
    /** Enqueue cycle (FCFS age and latency stats). */
    Cycle enqueueCycle = 0;
};

/** Statistics of one memory controller. */
struct McStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t busBusyCycles = 0;
    std::uint64_t queueFullRejects = 0;
    std::uint64_t totalReadLatency = 0;

    double
    rowHitRate() const
    {
        const std::uint64_t t = rowHits + rowMisses;
        return t == 0 ? 0.0
                      : static_cast<double>(rowHits) /
                static_cast<double>(t);
    }
    double
    avgReadLatency() const
    {
        return reads == 0 ? 0.0
                          : static_cast<double>(totalReadLatency) /
                static_cast<double>(reads);
    }
};

/** FR-FCFS GDDR5 memory controller for one memory partition. */
class MemoryController
{
  public:
    /** Callback type for read completions. */
    using ReadCallback =
        std::function<void(const DramRequest &, Cycle)>;

    /**
     * @param mc_id   partition id (stats/debug only).
     * @param params  structural and timing parameters.
     */
    MemoryController(McId mc_id, const DramParams &params);

    /** Set the read-completion callback (sim glue). */
    void setReadCallback(ReadCallback cb) { readCb_ = std::move(cb); }

    /** @return true if another request can be enqueued. */
    bool canAccept() const { return queue_.size() < params_.queueCapacity; }

    /**
     * Enqueue a request.
     * @pre canAccept().
     */
    void enqueue(DramRequest req, Cycle now);

    /**
     * Advance one cycle: issue at most one request FR-FCFS and fire
     * completions whose data transfer finished.
     */
    void tick(Cycle now);

    /** @return number of requests waiting or in flight. */
    std::size_t
    pendingRequests() const
    {
        return queue_.size() + inFlight_.size();
    }

    /** True when no request is queued or in flight. */
    bool drained() const { return pendingRequests() == 0; }

    const McStats &stats() const { return stats_; }
    void clearStats() { stats_ = McStats{}; }
    McId id() const { return id_; }
    const DramParams &params() const { return params_; }

    /** Register statistics in @p set. */
    void registerStats(StatSet &set) const;

  private:
    struct InFlight
    {
        DramRequest req;
        Cycle completeAt;
    };

    McId id_;
    DramParams params_;
    std::vector<DramBank> banks_;
    std::vector<DramRequest> queue_;
    std::vector<InFlight> inFlight_;
    /** Data bus is occupied until this cycle. */
    Cycle busFreeAt_ = 0;
    ReadCallback readCb_;
    McStats stats_;
};

} // namespace amsc

#endif // AMSC_MEM_MEMORY_CONTROLLER_HH
