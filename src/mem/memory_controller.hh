/**
 * @file
 * DRAM memory controller for one memory partition.
 *
 * Requests wait in a bounded queue. Each cycle the controller asks
 * its scheduling policy (mem/mem_scheduler.hh; Table 1 default:
 * FR-FCFS) for at most one request to issue, then computes a legal
 * command schedule for it:
 *
 *  - bank-local constraints (tRC/tRAS/tRP/tRCD/tCCD, and tWR gating
 *    precharge) live in DramBank;
 *  - controller-scope constraints are folded in as lower bounds:
 *    tRRD and the tFAW four-activate window over all banks, tWTR
 *    write-to-read turnaround on the shared data bus, tCCD_L/tCCD_S
 *    bank-group column spacing (when bankGroups > 1), and all-bank
 *    refresh every tREFI that closes rows and blocks the banks for
 *    tRFC;
 *  - data transfers serialize on the per-MC data bus; reads occupy
 *    it tCL after the column command, writes tCWL after.
 *
 * Refresh is charged only while the controller has work queued or in
 * flight: an idle-period refresh would delay nothing the model
 * observes, and skipping it keeps the fast-forward path bit-exact
 * (tests/test_perf_invariance.cc).
 *
 * Read completions are announced through a callback; writes complete
 * silently (the LLC is the point of write acknowledgment). An
 * optional command observer receives every ACT/RD/WR/REF with its
 * schedule, feeding the timing-legality property tests
 * (tests/test_mem_policy.cc).
 */

#ifndef AMSC_MEM_MEMORY_CONTROLLER_HH
#define AMSC_MEM_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/dram_bank.hh"
#include "mem/dram_timing.hh"
#include "mem/mem_scheduler.hh"

namespace amsc
{

/** Statistics of one memory controller. */
struct McStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t busBusyCycles = 0;
    /** Requests refused by canAccept() (LLC backpressure cycles). */
    std::uint64_t queueFullRejects = 0;
    std::uint64_t totalReadLatency = 0;
    /** All-bank refreshes performed. */
    std::uint64_t refreshes = 0;
    /** Times the write-drain scheduler entered drain mode. */
    std::uint64_t writeDrainEntries = 0;

    double
    rowHitRate() const
    {
        const std::uint64_t t = rowHits + rowMisses;
        return t == 0 ? 0.0
                      : static_cast<double>(rowHits) /
                static_cast<double>(t);
    }
    double
    avgReadLatency() const
    {
        return reads == 0 ? 0.0
                          : static_cast<double>(totalReadLatency) /
                static_cast<double>(reads);
    }
};

/** One scheduled DRAM command (test/debug observer record). */
struct McCommand
{
    enum class Kind : std::uint8_t
    {
        Activate,
        Read,
        Write,
        Refresh,
    };

    Kind kind = Kind::Activate;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    /** ACT / column-command / refresh-start cycle. */
    Cycle at = 0;
    /** Data-burst interval on the shared bus (column commands only). */
    Cycle dataStart = 0;
    Cycle dataEnd = 0;
};

/** Memory controller for one memory partition. */
class MemoryController
{
  public:
    /** Callback type for read completions. */
    using ReadCallback =
        std::function<void(const DramRequest &, Cycle)>;
    /** Callback type for the command-schedule observer. */
    using CommandObserver = std::function<void(const McCommand &)>;

    /**
     * @param mc_id   partition id (stats/debug only).
     * @param params  structural and timing parameters.
     * @param sched   scheduling policy (Table 1 default: FR-FCFS).
     */
    MemoryController(McId mc_id, const DramParams &params,
                     MemSched sched = MemSched::FrFcfs);

    /** Set the read-completion callback (sim glue). */
    void setReadCallback(ReadCallback cb) { readCb_ = std::move(cb); }

    /** Set the per-command observer (tests; nullptr to clear). */
    void
    setCommandObserver(CommandObserver cb)
    {
        cmdObserver_ = std::move(cb);
    }

    /** @return true if another request can be enqueued. */
    bool canAccept() const { return queue_.size() < params_.queueCapacity; }

    /** Record a request refused because the queue was full. */
    void noteQueueFullReject() { ++stats_.queueFullRejects; }

    /**
     * Enqueue a request.
     * @pre canAccept().
     */
    void enqueue(DramRequest req, Cycle now);

    /**
     * Advance one cycle: fire due completions, perform a pending
     * refresh, and issue at most one request per the scheduler.
     */
    void tick(Cycle now);

    /** @return number of requests waiting or in flight. */
    std::size_t
    pendingRequests() const
    {
        return queue_.size() + inFlight_.size();
    }

    /** True when no request is queued or in flight. */
    bool drained() const { return pendingRequests() == 0; }

    /**
     * Earliest cycle >= @p now whose tick() is not a no-op. A
     * non-empty queue pins the controller to `now` (the scheduler
     * re-evaluates, and mutates its drain state, every cycle); with
     * only in-flight requests the earliest completion -- bounded by
     * the next due refresh -- is exact; kNoCycle when drained.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        if (!queue_.empty())
            return now;
        if (inFlight_.empty())
            return kNoCycle;
        const Cycle refi = params_.timings.tREFI;
        if (refi != 0 && now >= nextRefreshAt_)
            return now;
        Cycle e = kNoCycle;
        for (const InFlight &f : inFlight_) {
            if (f.completeAt < e)
                e = f.completeAt;
        }
        if (refi != 0 && nextRefreshAt_ < e)
            e = nextRefreshAt_;
        return e > now ? e : now;
    }

    const McStats &stats() const { return stats_; }
    void clearStats() { stats_ = McStats{}; }
    McId id() const { return id_; }
    const DramParams &params() const { return params_; }
    MemSched sched() const { return schedKind_; }
    const DramBank &bank(std::uint32_t b) const { return banks_[b]; }

    /** Register statistics in @p set. */
    void registerStats(StatSet &set) const;

    /**
     * Serialize queue, in-flight completions, bank state machines,
     * controller-scope timing windows, scheduler state and stats.
     */
    void saveCkpt(CkptWriter &w) const;

    /** Restore state written by saveCkpt(). */
    void loadCkpt(CkptReader &r);

  private:
    struct InFlight
    {
        DramRequest req;
        Cycle completeAt;
    };

    /** Commit @p req: bank schedule, bus transfer, in-flight entry. */
    void issue(const DramRequest &req, Cycle now);

    /** Earliest legal ACT cycle given tRRD and the tFAW window. */
    Cycle actEarliest() const;

    /** Record one ACT at @p at in the activation window. */
    void recordActivate(Cycle at);

    /**
     * Refresh due and not yet performed? While true, no request may
     * issue (refresh would otherwise starve under row-hit streaks).
     */
    bool refreshPending(Cycle now) const;

    void observe(const McCommand &cmd) const
    {
        if (cmdObserver_)
            cmdObserver_(cmd);
    }

    McId id_;
    DramParams params_;
    MemSched schedKind_;
    std::unique_ptr<MemSchedulerPolicy> sched_;
    std::vector<DramBank> banks_;
    std::vector<DramRequest> queue_;
    std::vector<InFlight> inFlight_;
    /** Data bus is occupied until this cycle. */
    Cycle busFreeAt_ = 0;

    // ---- controller-scope timing state ----------------------------
    /** ACT issue cycles, most recent 4 (tFAW ring; pos_ = oldest). */
    Cycle actWindow_[4] = {0, 0, 0, 0};
    std::size_t actWindowPos_ = 0;
    /** Total ACTs issued (guards the cold-start window). */
    std::uint64_t actCount_ = 0;
    /** End of the most recent write data burst (tWTR gate). */
    Cycle lastWdataEnd_ = 0;
    bool anyWrite_ = false;
    /** Most recent column command, any group (tCCD_S gate). */
    Cycle lastColAt_ = 0;
    /** Most recent column command per bank group (tCCD_L gate). */
    std::vector<Cycle> groupColAt_;
    std::vector<std::uint8_t> groupColValid_;
    bool anyCol_ = false;
    /** Next refresh due at this cycle (tREFI; 0 disables). */
    Cycle nextRefreshAt_ = 0;

    ReadCallback readCb_;
    CommandObserver cmdObserver_;
    McStats stats_;
};

} // namespace amsc

#endif // AMSC_MEM_MEMORY_CONTROLLER_HH
