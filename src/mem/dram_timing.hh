/**
 * @file
 * DRAM timing and structural parameters.
 *
 * The baseline values are the GDDR5 timings of Table 1 of the paper;
 * the `mem_backend` presets (mem/mem_backend.hh) re-parameterize the
 * same constraint set for HBM2-style stacked DRAM and an STT-MRAM/SCM
 * style storage-class memory. All values are expressed in core-clock
 * cycles (1400 MHz baseline); the paper reports its GDDR5 timings in
 * the same clock domain.
 *
 * Where each constraint is enforced (docs/DESIGN.md, "Memory
 * backend", timing contract table):
 *
 *   per bank  : tRC, tRAS, tRP, tRCD, tCCD, tWR (gates precharge)
 *   per MC    : tRRD, tFAW (activation window), tWTR (write-to-read
 *               turnaround), tCCD_L/tCCD_S (bank-group column
 *               spacing, active when bankGroups > 1), tREFI/tRFC
 *               (all-bank refresh), data-bus serialization
 */

#ifndef AMSC_MEM_DRAM_TIMING_HH
#define AMSC_MEM_DRAM_TIMING_HH

#include <cstdint>

#include "common/types.hh"

namespace amsc
{

/** DRAM timing constraint set. */
struct DramTimings
{
    /** CAS latency: column read command to first data. */
    std::uint32_t tCL = 12;
    /** CAS write latency: column write command to first write data. */
    std::uint32_t tCWL = 10;
    /** Row precharge time. */
    std::uint32_t tRP = 12;
    /** Activate-to-activate, same bank (row cycle time). */
    std::uint32_t tRC = 40;
    /** Activate-to-precharge minimum (row open minimum). */
    std::uint32_t tRAS = 28;
    /** Activate to column command (row to column delay). */
    std::uint32_t tRCD = 12;
    /** Activate-to-activate, different banks of the same device. */
    std::uint32_t tRRD = 6;
    /** Four-activate window: any 5 ACTs to one MC span >= tFAW. 0 disables. */
    std::uint32_t tFAW = 32;
    /** Column-command to column-command spacing, same bank. */
    std::uint32_t tCCD = 2;
    /** Column spacing within one bank group (bankGroups > 1 only). */
    std::uint32_t tCCD_L = 4;
    /** Column spacing across bank groups (bankGroups > 1 only). */
    std::uint32_t tCCD_S = 2;
    /** Write recovery: last write data to *precharge* of that bank. */
    std::uint32_t tWR = 12;
    /** Write-to-read turnaround: last write data to next read column. */
    std::uint32_t tWTR = 7;
    /** Average refresh interval per MC. 0 disables refresh. */
    std::uint32_t tREFI = 5460;
    /** All-bank refresh cycle time (banks blocked this long). */
    std::uint32_t tRFC = 160;
};

/** Structural parameters of one memory controller / partition. */
struct DramParams
{
    DramTimings timings{};
    /** Banks per memory controller (Table 1: 16). */
    std::uint32_t banksPerMc = 16;
    /**
     * Bank groups per MC; 1 disables the bank-group column-spacing
     * constraints (tCCD_L/tCCD_S). Groups are interleaved over the
     * low bank bits (bank % bankGroups) so neighbouring banks land
     * in different groups, as with real group interleaving.
     */
    std::uint32_t bankGroups = 1;
    /**
     * Data-bus bandwidth in bytes per core cycle per MC.
     *
     * 900 GB/s aggregate at 1400 MHz is ~643 B/cycle, i.e. ~80
     * B/cycle per MC (Volta-class aggregate bandwidth, Table 1).
     */
    std::uint32_t busBytesPerCycle = 80;
    /** Cache-line (burst) size in bytes. */
    std::uint32_t lineBytes = 128;
    /** Row-buffer size in bytes (columns per row). */
    std::uint32_t rowBytes = 2048;
    /** Request queue capacity per MC. */
    std::uint32_t queueCapacity = 64;

    /** Cycles the data bus is occupied by one line transfer. */
    std::uint32_t
    burstCycles() const
    {
        return (lineBytes + busBytesPerCycle - 1) / busBytesPerCycle;
    }

    /** Lines per DRAM row. */
    std::uint32_t linesPerRow() const { return rowBytes / lineBytes; }

    /** Bank group of @p bank (low-bit interleaved). */
    std::uint32_t
    groupOf(std::uint32_t bank) const
    {
        return bankGroups <= 1 ? 0 : bank % bankGroups;
    }
};

} // namespace amsc

#endif // AMSC_MEM_DRAM_TIMING_HH
