/**
 * @file
 * GDDR5 timing parameters (Table 1 of the paper).
 *
 * All values are expressed in core-clock cycles (1400 MHz baseline);
 * the paper reports its GDDR5 timings in the same clock domain.
 */

#ifndef AMSC_MEM_DRAM_TIMING_HH
#define AMSC_MEM_DRAM_TIMING_HH

#include <cstdint>

#include "common/types.hh"

namespace amsc
{

/** DRAM timing constraint set. */
struct DramTimings
{
    /** CAS latency: column read command to first data. */
    std::uint32_t tCL = 12;
    /** Row precharge time. */
    std::uint32_t tRP = 12;
    /** Activate-to-activate, same bank (row cycle time). */
    std::uint32_t tRC = 40;
    /** Activate-to-precharge minimum (row open minimum). */
    std::uint32_t tRAS = 28;
    /** Activate to column command (row to column delay). */
    std::uint32_t tRCD = 12;
    /** Activate-to-activate, different banks of the same device. */
    std::uint32_t tRRD = 6;
    /** Column-command to column-command spacing. */
    std::uint32_t tCCD = 2;
    /** Write recovery time (last write data to precharge). */
    std::uint32_t tWR = 12;
};

/** Structural parameters of one memory controller / partition. */
struct DramParams
{
    DramTimings timings{};
    /** Banks per memory controller (Table 1: 16). */
    std::uint32_t banksPerMc = 16;
    /**
     * Data-bus bandwidth in bytes per core cycle per MC.
     *
     * 900 GB/s aggregate at 1400 MHz is ~643 B/cycle, i.e. ~80
     * B/cycle per MC (Volta-class aggregate bandwidth, Table 1).
     */
    std::uint32_t busBytesPerCycle = 80;
    /** Cache-line (burst) size in bytes. */
    std::uint32_t lineBytes = 128;
    /** Row-buffer size in bytes (columns per row). */
    std::uint32_t rowBytes = 2048;
    /** Request queue capacity per MC. */
    std::uint32_t queueCapacity = 64;

    /** Cycles the data bus is occupied by one line transfer. */
    std::uint32_t
    burstCycles() const
    {
        return (lineBytes + busBytesPerCycle - 1) / busBytesPerCycle;
    }

    /** Lines per DRAM row. */
    std::uint32_t linesPerRow() const { return rowBytes / lineBytes; }
};

} // namespace amsc

#endif // AMSC_MEM_DRAM_TIMING_HH
