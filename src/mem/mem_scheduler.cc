#include "mem/mem_scheduler.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/log.hh"

namespace amsc
{

MemSched
parseMemSched(const std::string &name)
{
    if (name == "fr_fcfs")
        return MemSched::FrFcfs;
    if (name == "fcfs")
        return MemSched::Fcfs;
    if (name == "write_drain")
        return MemSched::WriteDrain;
    throw ConfigError(
        strfmt("unknown memory scheduler '%s' (fr_fcfs|fcfs|write_drain)",
               name.c_str()));
}

std::string
memSchedName(MemSched s)
{
    switch (s) {
      case MemSched::FrFcfs:
        return "fr_fcfs";
      case MemSched::Fcfs:
        return "fcfs";
      case MemSched::WriteDrain:
        return "write_drain";
    }
    return "?";
}

namespace
{

/** Request filter for the shared FR-FCFS scan. */
enum class Want
{
    Any,
    Reads,
    Writes,
};

bool
wanted(const DramRequest &r, Want want)
{
    switch (want) {
      case Want::Any:
        return true;
      case Want::Reads:
        return !r.isWrite;
      case Want::Writes:
        return r.isWrite;
    }
    return true;
}

/**
 * FR-FCFS over the subset selected by @p want: the oldest row hit on
 * an idle bank, else the oldest request on an idle bank. The
 * two-pass scan is bit-identical to the pre-framework hardwired loop
 * when want == Any.
 */
std::size_t
frFcfsScan(const McPickView &view, Want want)
{
    const std::vector<DramRequest> &queue = view.queue;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const DramRequest &r = queue[i];
        if (!wanted(r, want))
            continue;
        const DramBank &bank = view.banks[r.bank];
        if (bank.idleAt(view.now) && bank.rowHit(r.row))
            return i;
    }
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (!wanted(queue[i], want))
            continue;
        if (view.banks[queue[i].bank].idleAt(view.now))
            return i;
    }
    return MemSchedulerPolicy::kNoPick;
}

} // namespace

std::size_t
FrFcfsSched::pick(const McPickView &view)
{
    return frFcfsScan(view, Want::Any);
}

std::size_t
FcfsSched::pick(const McPickView &view)
{
    if (view.queue.empty())
        return kNoPick;
    const DramRequest &head = view.queue.front();
    return view.banks[head.bank].idleAt(view.now) ? 0 : kNoPick;
}

WriteDrainSched::WriteDrainSched(std::uint32_t queue_capacity)
    : high_(std::max<std::uint32_t>(1, queue_capacity / 2)),
      low_(queue_capacity / 8)
{
}

std::size_t
WriteDrainSched::pick(const McPickView &view)
{
    std::uint32_t writes = 0;
    for (const DramRequest &r : view.queue)
        writes += r.isWrite ? 1 : 0;

    if (!draining_ && writes >= high_) {
        draining_ = true;
        ++entries_;
    } else if (draining_ && writes <= low_) {
        draining_ = false;
    }

    if (draining_)
        return frFcfsScan(view, Want::Writes);

    const std::size_t read = frFcfsScan(view, Want::Reads);
    if (read != kNoPick)
        return read;
    // No read can issue: let a write through so the queue keeps
    // moving (and drained() stays reachable below the watermark).
    return frFcfsScan(view, Want::Writes);
}

std::unique_ptr<MemSchedulerPolicy>
MemSchedulerPolicy::create(MemSched kind, std::uint32_t queue_capacity)
{
    switch (kind) {
      case MemSched::FrFcfs:
        return std::make_unique<FrFcfsSched>();
      case MemSched::Fcfs:
        return std::make_unique<FcfsSched>();
      case MemSched::WriteDrain:
        return std::make_unique<WriteDrainSched>(queue_capacity);
    }
    panic("unknown memory scheduler kind");
}

} // namespace amsc
