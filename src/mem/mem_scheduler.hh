/**
 * @file
 * Pluggable memory-controller scheduling policies.
 *
 * Mirrors the LLC replacement-policy framework (cache/replacement.hh):
 * the request-pick decision of MemoryController::tick is a stateful
 * policy object selected by the `mem_sched` configuration key. Each
 * cycle the controller hands the policy a read-only view of its
 * request queue and bank states; the policy returns the index of the
 * request to issue (or kNoPick). Issue *eligibility* is uniform
 * across policies -- a request can only issue when its bank has no
 * column command outstanding (DramBank::idleAt) -- so policies differ
 * purely in prioritization, and the timing legality enforced by the
 * controller (tRRD/tFAW/tWTR/refresh/bus) applies identically to all
 * of them (docs/DESIGN.md, "Memory backend", scheduler hook table).
 *
 * Policies:
 *  - fr_fcfs      first-ready FCFS (Table 1 baseline): oldest
 *                 row-buffer hit on an idle bank first, then the
 *                 oldest request on an idle bank. Bit-identical to
 *                 the pre-framework hardwired loop.
 *  - fcfs         strict in-order: only the oldest request may
 *                 issue. The std-reference oracle of the
 *                 differential tests (tests/test_mem_policy.cc).
 *  - write_drain  read-priority with batched write draining: reads
 *                 are served FR-FCFS; writes are issued
 *                 opportunistically when no read can go, and drained
 *                 in a batch once the queued-write count crosses a
 *                 high watermark, until a low watermark is reached.
 */

#ifndef AMSC_MEM_MEM_SCHEDULER_HH
#define AMSC_MEM_MEM_SCHEDULER_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ckpt.hh"
#include "common/types.hh"
#include "mem/dram_bank.hh"

namespace amsc
{

/** Memory-controller scheduling policy selector. */
enum class MemSched
{
    FrFcfs,
    Fcfs,
    WriteDrain,
};

/** Parse a scheduler name (fr_fcfs|fcfs|write_drain). */
MemSched parseMemSched(const std::string &name);

/** Scheduler key=value spelling. */
std::string memSchedName(MemSched s);

/** One request as seen by a memory controller. */
struct DramRequest
{
    Addr lineAddr = kNoAddr;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    bool isWrite = false;
    /** Opaque requester context (returned in the completion). */
    std::uint64_t token = 0;
    /** Enqueue cycle (FCFS age and latency stats). */
    Cycle enqueueCycle = 0;
};

/*
 * DramRequest has padding holes, so raw pod() serialization would
 * leak indeterminate bytes into checkpoints; encode field-wise.
 */
inline void
ckptValue(CkptWriter &w, const DramRequest &q)
{
    ckptFields(w, q.lineAddr, q.bank, q.row, q.isWrite, q.token,
               q.enqueueCycle);
}

inline void
ckptValue(CkptReader &r, DramRequest &q)
{
    ckptFields(r, q.lineAddr, q.bank, q.row, q.isWrite, q.token,
               q.enqueueCycle);
}

/** Read-only controller view handed to a policy's pick(). */
struct McPickView
{
    /** Waiting requests, enqueue order (index 0 is the oldest). */
    const std::vector<DramRequest> &queue;
    /** Bank state (rowHit / idleAt queries). */
    const std::vector<DramBank> &banks;
    Cycle now;
};

/** Memory-controller scheduling policy. */
class MemSchedulerPolicy
{
  public:
    /** pick() result meaning "nothing can issue this cycle". */
    static constexpr std::size_t kNoPick =
        static_cast<std::size_t>(-1);

    virtual ~MemSchedulerPolicy() = default;

    /**
     * Choose the queue index of the request to issue at view.now, or
     * kNoPick. Must only pick requests whose bank is idle at now.
     */
    virtual std::size_t pick(const McPickView &view) = 0;

    /** Times the policy entered write-drain mode (0 for stateless). */
    virtual std::uint64_t drainEntries() const { return 0; }

    /** Serialize policy state (no-op for stateless policies). */
    virtual void saveCkpt(CkptWriter &w) const { (void)w; }

    /** Restore state written by saveCkpt(). */
    virtual void loadCkpt(CkptReader &r) { (void)r; }

    /**
     * Factory for the policy selected by @p kind.
     *
     * @param queue_capacity owning controller's queue capacity
     *                       (write-drain watermarks scale with it).
     */
    static std::unique_ptr<MemSchedulerPolicy>
    create(MemSched kind, std::uint32_t queue_capacity);
};

/** First-ready FCFS (row hits first, then oldest; Table 1). */
class FrFcfsSched : public MemSchedulerPolicy
{
  public:
    std::size_t pick(const McPickView &view) override;
};

/** Strict in-order: only the oldest request may issue. */
class FcfsSched : public MemSchedulerPolicy
{
  public:
    std::size_t pick(const McPickView &view) override;
};

/**
 * Read-priority FR-FCFS with batched write draining.
 *
 * Writes accumulate until `highWatermark` of them are queued, then
 * drain (FR-FCFS among writes only) down to `lowWatermark`. Outside
 * drain mode reads are served FR-FCFS and a write may issue only
 * when no read can, so writes never starve the reconfiguration
 * quiesce (LlcSystem waits on MemorySystem::drained()).
 */
class WriteDrainSched : public MemSchedulerPolicy
{
  public:
    explicit WriteDrainSched(std::uint32_t queue_capacity);

    std::size_t pick(const McPickView &view) override;
    std::uint64_t drainEntries() const override { return entries_; }

    bool draining() const { return draining_; }
    std::uint32_t highWatermark() const { return high_; }
    std::uint32_t lowWatermark() const { return low_; }

    // Watermarks are derived from the queue capacity (structural);
    // only the drain mode and its entry counter are dynamic.
    void
    saveCkpt(CkptWriter &w) const override
    {
        w.b(draining_);
        w.u64(entries_);
    }

    void
    loadCkpt(CkptReader &r) override
    {
        draining_ = r.b();
        entries_ = r.u64();
    }

  private:
    std::uint32_t high_;
    std::uint32_t low_;
    bool draining_ = false;
    std::uint64_t entries_ = 0;
};

} // namespace amsc

#endif // AMSC_MEM_MEM_SCHEDULER_HH
