/**
 * @file
 * Warp instruction-stream abstraction.
 *
 * The simulator is driven at warp granularity: a warp alternates a
 * block of compute instructions with one memory instruction of 1..k
 * coalesced line accesses. Workload generators (src/workloads)
 * implement WarpTraceGen to synthesize streams whose *memory
 * behaviour* -- footprints, sharing, temporal correlation, read/write
 * mix, intensity -- matches the paper's benchmarks (Table 2, Fig 3).
 */

#ifndef AMSC_GPU_TRACE_HH
#define AMSC_GPU_TRACE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/ckpt.hh"
#include "common/error.hh"
#include "common/types.hh"

namespace amsc
{

/** Maximum line accesses per memory instruction (divergence cap). */
inline constexpr std::uint32_t kMaxAccessesPerInstr = 8;

/** One warp-level instruction batch. */
struct WarpInstr
{
    /** Compute instructions to retire before the memory operation. */
    std::uint32_t computeCycles = 0;
    /** Coalesced line addresses (0 => pure compute batch). */
    std::array<Addr, kMaxAccessesPerInstr> addrs{};
    std::uint32_t numAccesses = 0;
    /** True if the memory operation is a store. */
    bool isWrite = false;
    /**
     * True for global atomic operations (read-modify-write performed
     * at the LLC's ROP unit; paper section 4.1).
     */
    bool isAtomic = false;
};

/*
 * WarpInstr has padding holes, so raw pod() serialization would leak
 * indeterminate bytes into checkpoints; encode field-wise.
 */
inline void
ckptValue(CkptWriter &w, const WarpInstr &i)
{
    ckptFields(w, i.computeCycles, i.addrs, i.numAccesses, i.isWrite,
               i.isAtomic);
}

inline void
ckptValue(CkptReader &r, WarpInstr &i)
{
    ckptFields(r, i.computeCycles, i.addrs, i.numAccesses, i.isWrite,
               i.isAtomic);
}

/** Per-warp instruction stream generator. */
class WarpTraceGen
{
  public:
    virtual ~WarpTraceGen() = default;

    /**
     * Produce the warp's next instruction batch.
     *
     * @param out  filled on success.
     * @param now  current cycle (generators may use it to model
     *             phase behaviour, e.g. layer-by-layer streaming).
     * @return false when the warp has finished its work.
     */
    virtual bool nextInstr(WarpInstr &out, Cycle now) = 0;

    /**
     * Serialize the stream position so a factory-fresh generator for
     * the same (cta, warp) resumes bit-identically after loadCkpt().
     * Generators with external side effects (trace recording) cannot
     * be checkpointed and keep the throwing default.
     */
    virtual void
    saveCkpt(CkptWriter &w) const
    {
        (void)w;
        throw SimError("warp generator is not checkpointable");
    }

    /** Restore the position written by saveCkpt(). */
    virtual void
    loadCkpt(CkptReader &r)
    {
        (void)r;
        throw SimError("warp generator is not checkpointable");
    }
};

/** Factory producing the generator for (cta, warp-in-cta). */
using WarpGenFactory =
    std::function<std::unique_ptr<WarpTraceGen>(CtaId cta,
                                                std::uint32_t warp)>;

/** One kernel of a workload. */
struct KernelInfo
{
    std::string name = "kernel";
    std::uint32_t numCtas = 64;
    std::uint32_t warpsPerCta = 8;
    WarpGenFactory makeGen;
};

} // namespace amsc

#endif // AMSC_GPU_TRACE_HH
