/**
 * @file
 * CTA (thread block) scheduling policies (paper sections 5 and 6.4).
 *
 * The policy decides which SM runs which CTA, which in turn shapes
 * *inter-cluster* data locality:
 *
 *  - TwoLevelRR (default): consecutive CTAs round-robin across
 *    clusters, then across the SMs of a cluster. Adjacent CTAs --
 *    which tend to share data -- land in different clusters,
 *    maximizing inter-cluster sharing.
 *  - BCS (block CTA scheduling, Lee et al. HPCA 2014): pairs of
 *    adjacent CTAs go to the same SM to improve L1 locality.
 *  - DCS (distributed CTA scheduling, MCM-GPU ISCA 2017): the CTA
 *    space is divided into contiguous chunks, one per cluster, which
 *    *reduces* inter-cluster sharing (paper: smaller adaptive-LLC
 *    benefit, 23.9%).
 */

#ifndef AMSC_GPU_CTA_SCHEDULER_HH
#define AMSC_GPU_CTA_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace amsc
{

/** CTA scheduling policy selector. */
enum class CtaPolicy
{
    TwoLevelRR,
    Bcs,
    Dcs,
};

/** Parse a policy name ("rr" | "bcs" | "dcs"). */
CtaPolicy parseCtaPolicy(const std::string &name);

/** Policy display name. */
std::string ctaPolicyName(CtaPolicy p);

/**
 * Static CTA-to-SM assignment.
 *
 * @param policy        scheduling policy.
 * @param num_ctas      CTAs in the kernel.
 * @param num_sms       SMs available to this application.
 * @param sms_per_cluster cluster width (cluster-major SM numbering).
 * @param sm_ids        the global SM ids to schedule onto, in
 *                      cluster-major order (identity for
 *                      single-program runs; a subset in multi-program
 *                      mode).
 * @return per-SM ordered list of CTA ids (indexed like @p sm_ids).
 */
std::vector<std::vector<CtaId>>
assignCtas(CtaPolicy policy, std::uint32_t num_ctas,
           std::uint32_t num_sms, std::uint32_t sms_per_cluster,
           const std::vector<SmId> &sm_ids);

} // namespace amsc

#endif // AMSC_GPU_CTA_SCHEDULER_HH
