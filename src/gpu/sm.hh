/**
 * @file
 * Streaming multiprocessor (SM) timing model.
 *
 * Models what matters to the paper's mechanism: warps alternating
 * compute and memory phases, two greedy-then-oldest (GTO) warp
 * schedulers issuing one instruction per cycle each, a write-through
 * no-allocate L1 data cache with MSHR merging, bounded outstanding
 * misses, and CTA-granular work assignment. Compute is abstracted as
 * single-cycle instructions; memory behaviour is produced by the
 * workload's WarpTraceGen.
 *
 * The SM interacts with the rest of the GPU through:
 *   - a Network pointer for request injection,
 *   - a slice-mapping callback (the adaptive LLC decides whether the
 *     target slice follows the address hash or the cluster id),
 *   - onReply() invoked by the system for each delivered reply.
 */

#ifndef AMSC_GPU_SM_HH
#define AMSC_GPU_SM_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <functional>
#include <memory>
#include <vector>

#include "cache/cache_model.hh"
#include "cache/mshr.hh"
#include "common/delay_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "gpu/trace.hh"
#include "noc/network.hh"

namespace amsc
{

/** SM structural parameters (Table 1 defaults). */
struct SmParams
{
    SmId id = 0;
    ClusterId cluster = 0;
    /** Warp schedulers per SM (Table 1: 2, GTO). */
    std::uint32_t numSchedulers = 2;
    /** Concurrent CTAs resident on the SM. */
    std::uint32_t maxResidentCtas = 4;
    /** Resident warp contexts (Table 1: 2048 threads = 64 warps). */
    std::uint32_t maxResidentWarps = 64;
    /** L1 data cache geometry (Table 1: 48 KB, 6-way, 128 B). */
    CacheParams l1{};
    /** L1 hit latency in cycles. */
    std::uint32_t l1Latency = 28;
    /** L1 MSHR entries. */
    std::uint32_t l1Mshrs = 32;
    /** Merged targets per MSHR entry. */
    std::uint32_t l1MshrTargets = 8;
    /** Packet sizing for generated traffic. */
    PacketFormat packet{};
};

/** Aggregate SM statistics. */
struct SmStats
{
    std::uint64_t instructions = 0;
    std::uint64_t computeInstrs = 0;
    std::uint64_t memInstrs = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t atomics = 0;
    std::uint64_t issueStallCycles = 0;
    std::uint64_t mshrStalls = 0;
    std::uint64_t injectStalls = 0;
    std::uint64_t ctasCompleted = 0;
};

/** One streaming multiprocessor. */
class Sm
{
  public:
    /** Maps a line address to the target global LLC slice. */
    using SliceFn = std::function<SliceId(Addr line_addr)>;

    Sm(const SmParams &params, Network *net, SliceFn slice_for);

    /**
     * Launch (part of) a kernel on this SM.
     *
     * @param kernel kernel descriptor (owned by caller, must outlive
     *               execution).
     * @param ctas   CTA ids this SM must run, in execution order.
     */
    void launchKernel(const KernelInfo *kernel,
                      std::vector<CtaId> ctas, Cycle now);

    /** Advance one cycle. */
    void tick(Cycle now);

    /** Deliver one read reply (token = line address). */
    void onReply(const NocMessage &msg, Cycle now);

    /** True when all assigned CTAs have completed. */
    bool done() const;

    /**
     * Invoked once per launched kernel when the SM finishes its last
     * CTA (event-driven kernel management in GpuSystem).
     */
    void setDoneCallback(std::function<void()> cb)
    {
        doneCb_ = std::move(cb);
    }

    /**
     * Mirror every instruction retirement into @p counter (running
     * whole-GPU total; avoids the per-cycle all-SM stats scan).
     */
    void setRetiredCounter(std::uint64_t *counter)
    {
        retiredCounter_ = counter;
    }

    /** True while L1-hit completions are still in flight. */
    bool hasPendingCompletions() const { return !hitQueue_.empty(); }

    /**
     * Earliest cycle >= @p now whose tick() is not a no-op beyond
     * the per-cycle counters advanceIdleCycles() compensates: `now`
     * while a scheduler could issue, the first hit-queue completion
     * while issue-starved or stalled, kNoCycle when nothing can
     * happen without external input (a reply or an unstall).
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        if (!stalled_ && issueCandidates_ > 0)
            return now;
        if (!hitQueue_.empty()) {
            const Cycle e = hitQueue_.frontReadyCycle();
            return e > now ? e : now;
        }
        return kNoCycle;
    }

    /**
     * Account @p n externally skipped idle cycles (sim_mode=event):
     * tick() counts each as an issue stall while unfinished warps
     * exist but none is in an issueable state and the SM is not
     * reconfiguration-stalled (a stalled tick returns uncounted).
     */
    void
    advanceIdleCycles(Cycle n)
    {
        if (!stalled_ && issueCandidates_ == 0 && !done())
            stats_.issueStallCycles += n;
    }

    /** Stall/unstall instruction issue (LLC reconfiguration). */
    void setStalled(bool stalled) { stalled_ = stalled; }

    /** True when no L1 miss or atomic is outstanding. */
    bool
    quiescentMemory() const
    {
        return mshrs_.numActiveEntries() == 0 &&
            atomicPending_.empty();
    }

    /** Invalidate the L1 (software coherence at kernel boundaries). */
    void flushL1() { l1_.invalidateAll(); }

    const SmStats &stats() const { return stats_; }
    const CacheModel &l1() const { return l1_; }
    SmId id() const { return params_.id; }
    ClusterId cluster() const { return params_.cluster; }
    const SmParams &params() const { return params_; }

    /** Register per-SM statistics in @p set. */
    void registerStats(StatSet &set) const;

    /**
     * Serialize the L1, MSHRs, every warp context (including its
     * generator position) and the scheduler state.
     */
    void saveCkpt(CkptWriter &w) const;

    /**
     * Restore state written by saveCkpt(). @p kernel must be the
     * KernelInfo that was live at save time (or nullptr if none was):
     * warp generators are recreated through its factory before their
     * positions are restored.
     */
    void loadCkpt(CkptReader &r, const KernelInfo *kernel);

  private:
    /** Warp execution state. */
    enum class WarpState : std::uint8_t
    {
        Inactive,
        Compute,
        IssueMem,
        WaitMem,
        Done,
    };

    struct Warp
    {
        WarpState state = WarpState::Inactive;
        std::unique_ptr<WarpTraceGen> gen;
        WarpInstr cur{};
        std::uint32_t computeLeft = 0;
        std::uint32_t nextAccess = 0;
        std::uint32_t outstanding = 0;
        std::uint64_t age = 0;
        CtaId cta = 0;
        /** Warp index within the CTA (gen recreation on restore). */
        std::uint32_t warpInCta = 0;
    };

    /** @return true if state @p s competes for issue slots. */
    static bool countsIssue(WarpState s)
    {
        return s == WarpState::Compute || s == WarpState::IssueMem;
    }

    /** Transition @p w to @p s, maintaining issueCandidates_. */
    void setWarpState(Warp &w, WarpState s)
    {
        issueCandidates_ +=
            static_cast<int>(countsIssue(s)) -
            static_cast<int>(countsIssue(w.state));
        w.state = s;
    }

    /** Try to activate pending CTAs into free warp slots. */
    void activateCtas(Cycle now);

    /** Load the next instruction batch into warp @p w. */
    void advanceWarp(Warp &w, Cycle now);

    /** Called when one line access of a warp completes. */
    void completeAccess(std::uint32_t slot, Cycle now);

    /** Retire the current memory instruction of warp @p w if done. */
    void maybeRetireMem(std::uint32_t slot, Cycle now);

    /** @return true if warp @p w can issue this cycle. */
    bool issueable(const Warp &w) const;

    /** Issue one instruction from warp slot @p slot. */
    void issueFrom(std::uint32_t slot, Cycle now);

    /** Handle one CTA's warp finishing. */
    void onWarpDone(Warp &w, Cycle now);

    SmParams params_;
    Network *net_;
    SliceFn sliceFor_;
    CacheModel l1_;
    MshrFile<std::uint32_t> mshrs_; ///< targets are warp slots

    std::vector<Warp> warps_;
    std::vector<std::uint32_t> freeSlots_;
    const KernelInfo *kernel_ = nullptr;
    std::deque<CtaId> pendingCtas_;
    /** Outstanding warps per active CTA id. */
    std::vector<std::pair<CtaId, std::uint32_t>> activeCtaWarps_;

    /** L1 hit completions in flight (payload = warp slot). */
    DelayQueue<std::uint32_t> hitQueue_;
    /** Outstanding atomics: line -> warp slot (no merging: each
     *  read-modify-write gets its own reply). */
    std::unordered_multimap<Addr, std::uint32_t> atomicPending_;

    /** Per-scheduler GTO state: current greedy warp slot. */
    std::vector<std::uint32_t> gtoCurrent_;
    /** Memory issue port: one L1 access per cycle. */
    bool memPortBusyThisCycle_ = false;

    bool stalled_ = false;
    std::uint64_t warpAgeCounter_ = 0;
    /** Warps in Compute/IssueMem state (scheduler fast-path gate). */
    std::uint32_t issueCandidates_ = 0;
    std::function<void()> doneCb_;
    std::uint64_t *retiredCounter_ = nullptr;
    SmStats stats_;
};

} // namespace amsc

#endif // AMSC_GPU_SM_HH
