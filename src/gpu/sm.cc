#include "gpu/sm.hh"

#include <algorithm>

#include "common/log.hh"

namespace amsc
{

Sm::Sm(const SmParams &params, Network *net, SliceFn slice_for)
    : params_(params), net_(net), sliceFor_(std::move(slice_for)),
      l1_(params.l1), mshrs_(params.l1Mshrs, params.l1MshrTargets)
{
    warps_.resize(params_.maxResidentWarps);
    for (std::uint32_t i = 0; i < params_.maxResidentWarps; ++i)
        freeSlots_.push_back(params_.maxResidentWarps - 1 - i);
    gtoCurrent_.assign(params_.numSchedulers, kInvalidId);
}

void
Sm::launchKernel(const KernelInfo *kernel, std::vector<CtaId> ctas,
                 Cycle now)
{
    if (!done())
        panic("SM%u: kernel launched while busy", params_.id);
    kernel_ = kernel;
    pendingCtas_.assign(ctas.begin(), ctas.end());
    if (kernel_ != nullptr &&
        kernel_->warpsPerCta > params_.maxResidentWarps) {
        fatal("SM%u: CTA needs %u warps, SM holds %u", params_.id,
              kernel_->warpsPerCta, params_.maxResidentWarps);
    }
    activateCtas(now);
}

void
Sm::activateCtas(Cycle now)
{
    while (!pendingCtas_.empty() &&
           activeCtaWarps_.size() < params_.maxResidentCtas &&
           freeSlots_.size() >= kernel_->warpsPerCta) {
        const CtaId cta = pendingCtas_.front();
        pendingCtas_.pop_front();
        activeCtaWarps_.emplace_back(cta, kernel_->warpsPerCta);
        for (std::uint32_t w = 0; w < kernel_->warpsPerCta; ++w) {
            const std::uint32_t slot = freeSlots_.back();
            freeSlots_.pop_back();
            Warp &warp = warps_[slot];
            warp = Warp{};
            warp.gen = kernel_->makeGen(cta, w);
            warp.cta = cta;
            warp.warpInCta = w;
            warp.age = ++warpAgeCounter_;
            setWarpState(warp, WarpState::Compute);
            advanceWarp(warp, now);
        }
    }
}

void
Sm::advanceWarp(Warp &w, Cycle now)
{
    WarpInstr instr;
    if (!w.gen->nextInstr(instr, now)) {
        onWarpDone(w, now);
        return;
    }
    if (instr.computeCycles == 0 && instr.numAccesses == 0)
        panic("SM%u: empty warp instruction batch", params_.id);
    w.cur = instr;
    w.computeLeft = instr.computeCycles;
    w.nextAccess = 0;
    w.outstanding = 0;
    setWarpState(w, w.computeLeft > 0 ? WarpState::Compute
                                      : WarpState::IssueMem);
}

void
Sm::onWarpDone(Warp &w, Cycle now)
{
    setWarpState(w, WarpState::Done);
    for (auto it = activeCtaWarps_.begin();
         it != activeCtaWarps_.end(); ++it) {
        if (it->first == w.cta) {
            if (--it->second == 0) {
                // CTA complete: free all its warp slots.
                for (std::uint32_t s = 0; s < warps_.size(); ++s) {
                    if (warps_[s].state == WarpState::Done &&
                        warps_[s].cta == w.cta) {
                        warps_[s] = Warp{};
                        freeSlots_.push_back(s);
                    }
                }
                activeCtaWarps_.erase(it);
                ++stats_.ctasCompleted;
                activateCtas(now);
                if (done() && doneCb_)
                    doneCb_();
            }
            return;
        }
    }
    panic("SM%u: warp of unknown CTA finished", params_.id);
}

bool
Sm::done() const
{
    return pendingCtas_.empty() && activeCtaWarps_.empty();
}

bool
Sm::issueable(const Warp &w) const
{
    switch (w.state) {
      case WarpState::Compute:
        return true;
      case WarpState::IssueMem:
        return !memPortBusyThisCycle_;
      default:
        return false;
    }
}

void
Sm::completeAccess(std::uint32_t slot, Cycle now)
{
    Warp &w = warps_[slot];
    if (w.outstanding == 0)
        panic("SM%u: spurious access completion", params_.id);
    --w.outstanding;
    maybeRetireMem(slot, now);
}

void
Sm::maybeRetireMem(std::uint32_t slot, Cycle now)
{
    Warp &w = warps_[slot];
    if (w.state != WarpState::WaitMem &&
        w.state != WarpState::IssueMem)
        return;
    if (w.nextAccess == w.cur.numAccesses && w.outstanding == 0) {
        ++stats_.instructions;
        ++stats_.memInstrs;
        if (retiredCounter_ != nullptr)
            ++*retiredCounter_;
        advanceWarp(w, now);
    }
}

void
Sm::issueFrom(std::uint32_t slot, Cycle now)
{
    Warp &w = warps_[slot];
    if (w.state == WarpState::Compute) {
        --w.computeLeft;
        ++stats_.instructions;
        ++stats_.computeInstrs;
        if (retiredCounter_ != nullptr)
            ++*retiredCounter_;
        if (w.computeLeft == 0) {
            if (w.cur.numAccesses > 0)
                setWarpState(w, WarpState::IssueMem);
            else
                advanceWarp(w, now); // pure compute batch
        }
        return;
    }

    // Memory issue: one line access through the L1 port.
    const Addr line = w.cur.addrs[w.nextAccess];
    if (w.cur.isAtomic) {
        // Global atomics bypass the L1 and execute at the LLC's ROP
        // unit (paper section 4.1); the warp waits for the result.
        if (!net_->canInjectRequest(params_.id)) {
            ++stats_.injectStalls;
            return;
        }
        memPortBusyThisCycle_ = true;
        NocMessage msg;
        msg.kind = MsgKind::AtomicReq;
        msg.lineAddr = line;
        msg.src = params_.id;
        msg.dst = sliceFor_(line);
        msg.sizeBytes = params_.packet.sizeOf(MsgKind::AtomicReq);
        msg.token = line | (std::uint64_t{1} << 63);
        net_->injectRequest(msg, now);
        ++stats_.atomics;
        atomicPending_.emplace(line, slot);
        ++w.outstanding;
        ++w.nextAccess;
        if (w.nextAccess == w.cur.numAccesses)
            setWarpState(w, WarpState::WaitMem);
        return;
    }
    if (w.cur.isWrite) {
        // Write-through, no-allocate: the store needs an injection
        // slot; it completes immediately from the warp's view.
        if (!net_->canInjectRequest(params_.id)) {
            ++stats_.injectStalls;
            return;
        }
        memPortBusyThisCycle_ = true;
        l1_.lookup(line, true, params_.cluster, now);
        NocMessage msg;
        msg.kind = MsgKind::WriteReq;
        msg.lineAddr = line;
        msg.src = params_.id;
        msg.dst = sliceFor_(line);
        msg.sizeBytes = params_.packet.sizeOf(MsgKind::WriteReq);
        msg.token = line;
        net_->injectRequest(msg, now);
        ++stats_.stores;
        ++w.nextAccess;
        // Stores are fire-and-forget: the batch retires as soon as
        // its last access is injected.
        maybeRetireMem(slot, now);
        return;
    }

    // Load path.
    const bool in_l1 = l1_.contains(line);
    const bool merged = mshrs_.contains(line);
    if (!in_l1 && !merged) {
        // Primary miss: need an MSHR and an injection slot.
        if (!mshrs_.hasFreeEntry()) {
            ++stats_.mshrStalls;
            return;
        }
        if (!net_->canInjectRequest(params_.id)) {
            ++stats_.injectStalls;
            return;
        }
    }
    memPortBusyThisCycle_ = true;
    ++stats_.loads;
    const LookupResult res =
        l1_.lookup(line, false, params_.cluster, now);
    if (res.hit) {
        ++w.outstanding;
        hitQueue_.push(slot, now, params_.l1Latency);
    } else {
        const MshrAllocResult ar = mshrs_.allocate(line, slot);
        switch (ar) {
          case MshrAllocResult::NewEntry: {
            NocMessage msg;
            msg.kind = MsgKind::ReadReq;
            msg.lineAddr = line;
            msg.src = params_.id;
            msg.dst = sliceFor_(line);
            msg.sizeBytes = params_.packet.sizeOf(MsgKind::ReadReq);
            msg.token = line;
            net_->injectRequest(msg, now);
            break;
          }
          case MshrAllocResult::Merged:
            break;
          case MshrAllocResult::NoFreeEntry:
          case MshrAllocResult::NoFreeTarget:
            // Structural stall; the L1 port was consumed but the
            // access retries next cycle.
            ++stats_.mshrStalls;
            --stats_.loads;
            return;
        }
        ++w.outstanding;
    }
    ++w.nextAccess;
    if (w.nextAccess == w.cur.numAccesses)
        setWarpState(w, WarpState::WaitMem);
    maybeRetireMem(slot, now);
}

void
Sm::tick(Cycle now)
{
    memPortBusyThisCycle_ = false;

    // 1. L1 hit completions.
    while (hitQueue_.ready(now))
        completeAccess(hitQueue_.pop(now), now);

    if (stalled_)
        return;

    // Fast path: with no warp in an issueable state the scheduler
    // scan below cannot pick anything; account the stall and leave.
    if (issueCandidates_ == 0) {
        if (!done())
            ++stats_.issueStallCycles;
        return;
    }

    // 2. Schedulers: GTO issue, warps partitioned by slot parity.
    bool issued_any = false;
    for (std::uint32_t s = 0; s < params_.numSchedulers; ++s) {
        std::uint32_t pick = kInvalidId;
        // Greedy: stick with the current warp while it can issue.
        const std::uint32_t cur = gtoCurrent_[s];
        if (cur != kInvalidId && warps_[cur].state != WarpState::Done &&
            warps_[cur].state != WarpState::Inactive &&
            cur % params_.numSchedulers == s && issueable(warps_[cur])) {
            pick = cur;
        } else {
            // Oldest ready warp in this scheduler's partition.
            std::uint64_t best_age = 0;
            for (std::uint32_t w = s; w < warps_.size();
                 w += params_.numSchedulers) {
                if (warps_[w].state == WarpState::Inactive ||
                    warps_[w].state == WarpState::Done)
                    continue;
                if (!issueable(warps_[w]))
                    continue;
                if (pick == kInvalidId || warps_[w].age < best_age) {
                    pick = w;
                    best_age = warps_[w].age;
                }
            }
        }
        if (pick == kInvalidId)
            continue;
        gtoCurrent_[s] = pick;
        issueFrom(pick, now);
        issued_any = true;
    }
    if (!issued_any && !done())
        ++stats_.issueStallCycles;
}

void
Sm::onReply(const NocMessage &msg, Cycle now)
{
    if (msg.kind != MsgKind::ReadReply)
        panic("SM%u: unexpected reply kind", params_.id);
    const Addr line = msg.lineAddr;
    if ((msg.token >> 63) != 0) {
        // Atomic completion: exactly one pending RMW finishes.
        const auto it = atomicPending_.find(line);
        if (it == atomicPending_.end())
            panic("SM%u: atomic reply without request", params_.id);
        const std::uint32_t slot = it->second;
        atomicPending_.erase(it);
        completeAccess(slot, now);
        return;
    }
    l1_.fill(line, false, params_.cluster, now);
    const std::vector<std::uint32_t> targets = mshrs_.complete(line);
    for (const std::uint32_t slot : targets)
        completeAccess(slot, now);
}

void
Sm::registerStats(StatSet &set) const
{
    const std::string p = "sm" + std::to_string(params_.id);
    set.addCounter(p + ".instructions", "instructions retired",
                   stats_.instructions);
    set.addCounter(p + ".mem_instrs", "memory instructions",
                   stats_.memInstrs);
    set.addCounter(p + ".loads", "load accesses", stats_.loads);
    set.addCounter(p + ".stores", "store accesses", stats_.stores);
    set.addCounter(p + ".stall_cycles", "cycles with no issue",
                   stats_.issueStallCycles);
    set.addCounter(p + ".ctas", "CTAs completed",
                   stats_.ctasCompleted);
}

void
Sm::saveCkpt(CkptWriter &w) const
{
    l1_.saveCkpt(w);
    mshrs_.saveCkpt(w);
    w.varint(warps_.size());
    for (const Warp &warp : warps_) {
        w.u8(static_cast<std::uint8_t>(warp.state));
        ckptValue(w, warp.cur);
        w.u32(warp.computeLeft);
        w.u32(warp.nextAccess);
        w.u32(warp.outstanding);
        w.u64(warp.age);
        w.u32(warp.cta);
        w.u32(warp.warpInCta);
        w.b(warp.gen != nullptr);
        if (warp.gen)
            warp.gen->saveCkpt(w);
    }
    w.podVec(freeSlots_);
    ckptValue(w, pendingCtas_);
    ckptValue(w, activeCtaWarps_);
    hitQueue_.saveCkpt(w);

    // atomicPending_ is serialized key-sorted (deterministic bytes);
    // each key's slot group is written in equal_range order because
    // onReply() completes the find()-first entry, making the per-key
    // order observable.
    std::vector<Addr> keys;
    keys.reserve(atomicPending_.size());
    for (const auto &e : atomicPending_)
        keys.push_back(e.first);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    w.varint(keys.size());
    for (const Addr line : keys) {
        const auto [lo, hi] = atomicPending_.equal_range(line);
        std::vector<std::uint32_t> slots;
        for (auto it = lo; it != hi; ++it)
            slots.push_back(it->second);
        w.u64(line);
        w.varint(slots.size());
        for (const std::uint32_t s : slots)
            w.u32(s);
    }

    w.podVec(gtoCurrent_);
    w.b(stalled_);
    w.u64(warpAgeCounter_);
    w.pod(stats_);
}

void
Sm::loadCkpt(CkptReader &r, const KernelInfo *kernel)
{
    l1_.loadCkpt(r);
    mshrs_.loadCkpt(r);
    if (r.varint() != warps_.size())
        r.fail("SM warp-slot count mismatch");
    kernel_ = kernel;
    issueCandidates_ = 0;
    for (Warp &warp : warps_) {
        const std::uint8_t st = r.u8();
        if (st > static_cast<std::uint8_t>(WarpState::Done))
            r.fail("bad warp state");
        warp.state = static_cast<WarpState>(st);
        ckptValue(r, warp.cur);
        warp.computeLeft = r.u32();
        warp.nextAccess = r.u32();
        warp.outstanding = r.u32();
        warp.age = r.u64();
        warp.cta = r.u32();
        warp.warpInCta = r.u32();
        if (r.b()) {
            if (kernel == nullptr || !kernel->makeGen)
                r.fail("warp generator without a live kernel");
            warp.gen = kernel->makeGen(warp.cta, warp.warpInCta);
            warp.gen->loadCkpt(r);
        } else {
            warp.gen.reset();
        }
        if (countsIssue(warp.state))
            ++issueCandidates_;
    }
    r.podVec(freeSlots_);
    ckptValue(r, pendingCtas_);
    ckptValue(r, activeCtaWarps_);
    hitQueue_.loadCkpt(r);

    atomicPending_.clear();
    const std::uint64_t nkeys = r.varint();
    for (std::uint64_t k = 0; k < nkeys; ++k) {
        const Addr line = r.u64();
        const std::uint64_t n = r.varint();
        std::vector<std::uint32_t> slots(n);
        for (std::uint32_t &s : slots)
            s = r.u32();
        if (slots.empty())
            continue;
        // libstdc++ keeps equal keys adjacent and links each new node
        // right after the first existing equal one, so inserting
        // y1, yn, yn-1, ..., y2 reproduces traversal order y1..yn.
        atomicPending_.emplace(line, slots[0]);
        for (std::size_t i = slots.size(); i > 1; --i)
            atomicPending_.emplace(line, slots[i - 1]);
    }

    r.podVec(gtoCurrent_);
    stalled_ = r.b();
    warpAgeCounter_ = r.u64();
    r.pod(stats_);
    memPortBusyThisCycle_ = false;
}

} // namespace amsc
