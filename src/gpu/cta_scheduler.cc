#include "gpu/cta_scheduler.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/error.hh"
#include "common/log.hh"

namespace amsc
{

CtaPolicy
parseCtaPolicy(const std::string &name)
{
    if (name == "rr" || name == "two_level_rr")
        return CtaPolicy::TwoLevelRR;
    if (name == "bcs")
        return CtaPolicy::Bcs;
    if (name == "dcs")
        return CtaPolicy::Dcs;
    throw ConfigError(
        strfmt("unknown CTA policy '%s' (rr|bcs|dcs)", name.c_str()));
}

std::string
ctaPolicyName(CtaPolicy p)
{
    switch (p) {
      case CtaPolicy::TwoLevelRR:
        return "two-level-rr";
      case CtaPolicy::Bcs:
        return "bcs";
      case CtaPolicy::Dcs:
        return "dcs";
    }
    return "?";
}

std::vector<std::vector<CtaId>>
assignCtas(CtaPolicy policy, std::uint32_t num_ctas,
           std::uint32_t num_sms, std::uint32_t sms_per_cluster,
           const std::vector<SmId> &sm_ids)
{
    if (num_sms == 0 || sm_ids.size() < num_sms)
        fatal("assignCtas: bad SM count");
    const std::uint32_t clusters = static_cast<std::uint32_t>(
        divCeil(num_sms, sms_per_cluster));

    auto sms_in_cluster = [&](std::uint32_t c) {
        return std::min(sms_per_cluster,
                        num_sms - c * sms_per_cluster);
    };

    std::vector<std::vector<CtaId>> out(num_sms);

    for (CtaId i = 0; i < num_ctas; ++i) {
        std::uint32_t cluster = 0;
        std::uint32_t slot = 0;
        switch (policy) {
          case CtaPolicy::TwoLevelRR: {
            cluster = i % clusters;
            slot = (i / clusters) % sms_in_cluster(cluster);
            break;
          }
          case CtaPolicy::Bcs: {
            // Pairs of adjacent CTAs co-locate on one SM.
            const std::uint32_t j = i / 2;
            cluster = j % clusters;
            slot = (j / clusters) % sms_in_cluster(cluster);
            break;
          }
          case CtaPolicy::Dcs: {
            // Contiguous chunk of the CTA space per cluster.
            const std::uint32_t chunk = static_cast<std::uint32_t>(
                divCeil(num_ctas, clusters));
            cluster = std::min(i / chunk, clusters - 1);
            const std::uint32_t k = i - cluster * chunk;
            slot = k % sms_in_cluster(cluster);
            break;
          }
        }
        const std::uint32_t index = cluster * sms_per_cluster + slot;
        out[index].push_back(i);
    }
    return out;
}

} // namespace amsc
