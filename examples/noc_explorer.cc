/**
 * @file
 * NoC explorer: drive any of the four network models standalone with
 * synthetic traffic patterns and report latency, throughput, power
 * and area -- a playground for the paper's section 3 design space.
 *
 * Usage: noc_explorer [noc=hxbar] [channel_width=32]
 *                     [pattern=uniform|hotspot] [load=0.3] [...]
 */

#include <cstdio>

#include "common/kvargs.hh"
#include "common/rng.hh"
#include "noc/network_factory.hh"
#include "power/noc_power.hh"
#include "sim/sim_config.hh"

using namespace amsc;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    SimConfig cfg;
    cfg.applyKv(args);
    const NocParams np = cfg.buildNocParams();
    const std::string pattern = args.getString("pattern", "uniform");
    const double load = args.getDouble("load", 0.3);
    const Cycle horizon = args.getUint("cycles", 20000);

    auto net = makeNetwork(np);
    Rng rng(cfg.seed);

    std::printf("=== %s | %u SMs -> %u slices | %u B channels | "
                "pattern=%s load=%.2f ===\n",
                net->name().c_str(), np.numSms, np.numSlices(),
                np.channelWidthBytes, pattern.c_str(), load);

    std::uint64_t delivered_req = 0;
    std::uint64_t delivered_rep = 0;
    for (Cycle c = 0; c < horizon; ++c) {
        // Request side: SMs inject reads.
        for (SmId sm = 0; sm < np.numSms; ++sm) {
            if (!rng.chance(load))
                continue;
            const SliceId dst = pattern == "hotspot"
                ? static_cast<SliceId>(rng.below(4))
                : static_cast<SliceId>(rng.below(np.numSlices()));
            if (net->canInjectRequest(sm)) {
                NocMessage m;
                m.kind = MsgKind::ReadReq;
                m.src = sm;
                m.dst = dst;
                m.sizeBytes = np.packet.sizeOf(MsgKind::ReadReq);
                net->injectRequest(m, c);
            }
        }
        net->tick(c);
        // Slices bounce each request back as a data reply.
        for (SliceId s = 0; s < np.numSlices(); ++s) {
            while (net->hasRequestFor(s)) {
                const NocMessage req = net->popRequestFor(s, c);
                ++delivered_req;
                if (net->canInjectReply(s)) {
                    NocMessage rep;
                    rep.kind = MsgKind::ReadReply;
                    rep.src = s;
                    rep.dst = req.src;
                    rep.sizeBytes =
                        np.packet.sizeOf(MsgKind::ReadReply);
                    net->injectReply(rep, c);
                }
            }
        }
        for (SmId sm = 0; sm < np.numSms; ++sm) {
            while (net->hasReplyFor(sm)) {
                net->popReplyFor(sm, c);
                ++delivered_rep;
            }
        }
    }

    std::printf("  requests delivered  %llu (%.3f/cycle)\n",
                static_cast<unsigned long long>(delivered_req),
                static_cast<double>(delivered_req) /
                    static_cast<double>(horizon));
    std::printf("  replies delivered   %llu (%.3f/cycle, %.1f "
                "B/cycle data)\n",
                static_cast<unsigned long long>(delivered_rep),
                static_cast<double>(delivered_rep) /
                    static_cast<double>(horizon),
                static_cast<double>(delivered_rep) * 128.0 /
                    static_cast<double>(horizon));
    std::printf("  request latency     %.1f cycles\n",
                net->requestStats().avgLatency());
    std::printf("  reply latency       %.1f cycles\n",
                net->replyStats().avgLatency());

    const NocPowerModel model;
    const NocPowerResult pw =
        model.evaluate(net->activity(), horizon);
    std::printf("  area                %.2f mm^2 "
                "(buf %.2f, xbar %.2f, links %.2f, other %.2f)\n",
                pw.totalAreaMm2(), pw.areaMm2.buffer,
                pw.areaMm2.crossbar, pw.areaMm2.links,
                pw.areaMm2.other);
    std::printf("  power               %.1f mW (dynamic %.1f + "
                "static %.1f)\n",
                pw.totalPowerMw(), pw.dynamicMw.total(),
                pw.staticMw.total());
    args.warnUnused();
    return 0;
}
