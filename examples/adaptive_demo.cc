/**
 * @file
 * Adaptive-LLC demo: watch the controller work in real time.
 *
 * Runs a private-cache-friendly workload under the adaptive policy
 * and prints a timeline of profiling windows, rule firings, mode
 * transitions and reconfiguration costs, followed by a comparison
 * against both static organizations.
 *
 * Usage: adaptive_demo [workload=NN] [epoch_len=100000] [...]
 */

#include <cstdio>

#include "common/kvargs.hh"
#include "common/log.hh"
#include "sim/gpu_system.hh"
#include "workloads/suite.hh"

using namespace amsc;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    setLogLevel(LogLevel::Verbose); // show the decide() lines

    const std::string name = args.getString("workload", "NN");
    const WorkloadSpec &spec = WorkloadSuite::byName(name);

    SimConfig cfg;
    cfg.maxCycles = 120000;
    cfg.profileLen = 5000;
    cfg.epochLen = 50000;
    cfg.applyKv(args);
    cfg.llcPolicy = LlcPolicy::Adaptive;

    std::printf("=== adaptive LLC timeline: %s (%s) ===\n",
                spec.abbr.c_str(), spec.fullName.c_str());

    GpuSystem gpu(cfg);
    gpu.setWorkload(0, WorkloadSuite::buildKernels(spec, cfg.seed));

    LlcMode last = LlcMode::Shared;
    std::uint64_t last_windows = 0;
    while (gpu.now() < cfg.maxCycles) {
        gpu.step(1000);
        const LlcMode mode = gpu.llc().mode(0);
        const auto &st = gpu.llc().stats();
        if (mode != last) {
            std::printf("@%-8llu mode -> %s (stall so far: %llu "
                        "cycles)\n",
                        static_cast<unsigned long long>(gpu.now()),
                        llcModeName(mode),
                        static_cast<unsigned long long>(
                            st.reconfigStallCycles));
            last = mode;
        }
        if (st.profileWindows != last_windows) {
            last_windows = st.profileWindows;
            const ProfileSnapshot &s = gpu.llc().lastSnapshot();
            std::printf("@%-8llu profile window %llu: miss_s=%.3f "
                        "miss_p(pred)=%.3f lsp_s=%.1f lsp_p=%.1f\n",
                        static_cast<unsigned long long>(gpu.now()),
                        static_cast<unsigned long long>(
                            st.profileWindows),
                        s.sharedMissRate, s.privateMissRate,
                        s.sharedLsp, s.privateLsp);
        }
        const RunResult r = gpu.collect();
        if (r.finishedWork)
            break;
    }

    const RunResult adaptive = gpu.collect();
    std::printf("\n=== summary after %llu cycles ===\n",
                static_cast<unsigned long long>(adaptive.cycles));
    std::printf("  transitions to private : %llu\n",
                static_cast<unsigned long long>(
                    adaptive.llcCtrl.transitionsToPrivate));
    std::printf("  transitions to shared  : %llu\n",
                static_cast<unsigned long long>(
                    adaptive.llcCtrl.transitionsToShared));
    std::printf("  cycles in private mode : %llu (%.0f%%)\n",
                static_cast<unsigned long long>(
                    adaptive.llcCtrl.cyclesPrivate),
                100.0 *
                    static_cast<double>(
                        adaptive.llcCtrl.cyclesPrivate) /
                    static_cast<double>(adaptive.cycles));
    std::printf("  reconfiguration stalls : %llu cycles (%.2f%%)\n",
                static_cast<unsigned long long>(
                    adaptive.llcCtrl.reconfigStallCycles),
                100.0 *
                    static_cast<double>(
                        adaptive.llcCtrl.reconfigStallCycles) /
                    static_cast<double>(adaptive.cycles));

    setLogLevel(LogLevel::Normal);
    auto run_static = [&](LlcPolicy policy) {
        SimConfig c = cfg;
        c.llcPolicy = policy;
        GpuSystem g(c);
        g.setWorkload(0, WorkloadSuite::buildKernels(spec, c.seed));
        return g.run();
    };
    const RunResult shared = run_static(LlcPolicy::ForceShared);
    const RunResult priv = run_static(LlcPolicy::ForcePrivate);
    std::printf("\n  IPC shared / private / adaptive : %.1f / %.1f / "
                "%.1f\n",
                shared.ipc, priv.ipc, adaptive.ipc);
    std::printf("  adaptive vs shared              : %+.1f%%\n",
                (adaptive.ipc / shared.ipc - 1.0) * 100.0);
    args.warnUnused();
    return 0;
}
