/**
 * @file
 * Multi-program demo (paper Figs 9 and 15): two applications with
 * opposite LLC preferences co-execute, each owning half of every
 * cluster, with per-application LLC views.
 *
 * Usage: multiprogram [app0=GEMM] [app1=NN] [...]
 */

#include <cstdio>

#include "common/kvargs.hh"
#include "sim/gpu_system.hh"
#include "workloads/suite.hh"

using namespace amsc;

namespace
{

struct JointResult
{
    double ipc0;
    double ipc1;
};

JointResult
runJoint(SimConfig cfg, const WorkloadSpec &a, const WorkloadSpec &b,
         LlcPolicy pa, LlcPolicy pb)
{
    cfg.llcPolicy = pa;
    cfg.extraAppPolicies = {pb};
    GpuSystem gpu(cfg);
    gpu.setWorkload(0, WorkloadSuite::buildKernels(a, cfg.seed, 0));
    gpu.setWorkload(1, WorkloadSuite::buildKernels(b, cfg.seed, 1));
    const RunResult r = gpu.run();
    return {r.appIpc[0], r.appIpc[1]};
}

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    SimConfig cfg;
    cfg.maxCycles = 60000;
    cfg.applyKv(args);

    const WorkloadSpec &a =
        WorkloadSuite::byName(args.getString("app0", "GEMM"));
    const WorkloadSpec &b =
        WorkloadSuite::byName(args.getString("app1", "NN"));

    std::printf("=== multi-program: %s (%s) + %s (%s) ===\n",
                a.abbr.c_str(), workloadClassName(a.klass).c_str(),
                b.abbr.c_str(), workloadClassName(b.klass).c_str());

    // Isolated baselines (full machine, shared LLC).
    auto alone = [&cfg](const WorkloadSpec &spec) {
        SimConfig c = cfg;
        c.llcPolicy = LlcPolicy::ForceShared;
        GpuSystem gpu(c);
        gpu.setWorkload(0,
                        WorkloadSuite::buildKernels(spec, c.seed));
        return gpu.run().ipc;
    };
    const double alone0 = alone(a);
    const double alone1 = alone(b);
    std::printf("alone IPC: %s=%.1f  %s=%.1f\n", a.abbr.c_str(),
                alone0, b.abbr.c_str(), alone1);

    const JointResult both_shared = runJoint(
        cfg, a, b, LlcPolicy::ForceShared, LlcPolicy::ForceShared);
    const JointResult mixed = runJoint(
        cfg, a, b, LlcPolicy::ForceShared, LlcPolicy::ForcePrivate);

    const double stp_shared =
        both_shared.ipc0 / alone0 + both_shared.ipc1 / alone1;
    const double stp_mixed =
        mixed.ipc0 / alone0 + mixed.ipc1 / alone1;

    std::printf("\n| config | %s IPC | %s IPC | STP |\n",
                a.abbr.c_str(), b.abbr.c_str());
    std::printf("|---|---|---|---|\n");
    std::printf("| both shared | %.1f | %.1f | %.2f |\n",
                both_shared.ipc0, both_shared.ipc1, stp_shared);
    std::printf("| %s shared + %s private | %.1f | %.1f | %.2f |\n",
                a.abbr.c_str(), b.abbr.c_str(), mixed.ipc0,
                mixed.ipc1, stp_mixed);
    std::printf("\nSTP gain from per-app LLC views: %+.1f%% "
                "(paper Fig 15: +8%% average)\n",
                (stp_mixed / stp_shared - 1.0) * 100.0);
    args.warnUnused();
    return 0;
}
