/**
 * @file
 * Building a custom workload against the public API.
 *
 * Shows the two extension points:
 *  1. TraceParams: parameterize the built-in synthetic generator
 *     (pattern, footprints, sharing, intensity);
 *  2. WarpTraceGen: implement a fully custom per-warp instruction
 *     stream (here: a stencil-like kernel where neighbouring CTAs
 *     share halo rows).
 *
 * Usage: custom_workload [llc_policy=adaptive] [...]
 */

#include <cstdio>
#include <memory>

#include "common/kvargs.hh"
#include "sim/gpu_system.hh"
#include "workloads/trace_gen.hh"

using namespace amsc;

namespace
{

/**
 * A 1-D stencil: CTA c sweeps rows [c*R, (c+1)*R) and also reads one
 * halo row of each neighbour, so adjacent CTAs -- which two-level RR
 * spreads across clusters -- share boundary lines.
 */
class StencilGen : public WarpTraceGen
{
  public:
    StencilGen(CtaId cta, std::uint32_t warp, std::uint64_t seed)
        : cta_(cta), rng_(seed + cta * 977 + warp)
    {}

    bool
    nextInstr(WarpInstr &out, Cycle) override
    {
        if (issued_ >= kInstrs)
            return false;
        ++issued_;
        out = WarpInstr{};
        out.computeCycles = 3;
        out.numAccesses = 3; // left halo, centre, right halo
        const Addr row = kRowsPerCta * cta_;
        const Addr col = rng_.below(kRowLines);
        out.addrs[0] = (row + kRowsPerCta) * kRowLines + col; // next
        out.addrs[1] = row * kRowLines + col;                 // own
        out.addrs[2] = row == 0
            ? out.addrs[1]
            : (row - 1) * kRowLines + col; // previous
        out.isWrite = rng_.chance(0.1);
        return true;
    }

  private:
    static constexpr std::uint64_t kRowLines = 256;
    static constexpr std::uint64_t kRowsPerCta = 4;
    static constexpr std::uint64_t kInstrs = 400;

    CtaId cta_;
    Rng rng_;
    std::uint64_t issued_ = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    SimConfig cfg;
    cfg.maxCycles = 50000;
    cfg.profileLen = 5000;
    cfg.applyKv(args);

    // --- 1. parameterized synthetic kernel -------------------------
    TraceParams t;
    t.pattern = AccessPattern::Broadcast;
    t.sharedLines = 16384; // 2 MB of read-only shared data
    t.sharedFraction = 0.9;
    t.broadcastWindow = 16;
    t.phaseCyclesPerLine = 6;
    t.memInstrsPerWarp = 300;
    t.computePerMem = 3;
    const KernelInfo synth =
        makeSyntheticKernel("my-broadcast", t, 320, 8);

    // --- 2. fully custom generator ---------------------------------
    KernelInfo stencil;
    stencil.name = "stencil";
    stencil.numCtas = 320;
    stencil.warpsPerCta = 8;
    const std::uint64_t seed = cfg.seed;
    stencil.makeGen = [seed](CtaId cta, std::uint32_t warp) {
        return std::make_unique<StencilGen>(cta, warp, seed);
    };

    for (const char *policy : {"shared", "adaptive"}) {
        SimConfig c = cfg;
        c.llcPolicy = parseLlcPolicy(policy);
        GpuSystem gpu(c);
        gpu.setWorkload(0, {synth, stencil});
        const RunResult r = gpu.run();
        std::printf("%-8s ipc=%7.1f llc_miss=%.3f mode_end=%s "
                    "kernels_done=%s\n",
                    policy, r.ipc, r.llcReadMissRate,
                    llcModeName(r.finalMode),
                    r.finishedWork ? "all" : "partial");
    }
    args.warnUnused();
    return 0;
}
