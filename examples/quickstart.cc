/**
 * @file
 * Quickstart: build a baseline GPU, run one workload under the three
 * LLC policies, print the headline metrics.
 *
 * Usage:
 *   quickstart [workload=AN] [max_cycles=60000] [noc=hxbar] ...
 * Any SimConfig key=value override is accepted (see README).
 */

#include <cstdio>

#include "common/kvargs.hh"
#include "common/log.hh"
#include "sim/gpu_system.hh"
#include "workloads/suite.hh"

using namespace amsc;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    if (args.getString("log", "") == "verbose")
        setLogLevel(LogLevel::Verbose);
    const std::string name = args.getString("workload", "AN");
    const WorkloadSpec &spec = WorkloadSuite::byName(name);

    std::printf("amsc quickstart: %s (%s, %.3f MB shared, %u kernels)\n",
                spec.abbr.c_str(), spec.fullName.c_str(), spec.sharedMb,
                spec.paperKernels);

    const char *policies[] = {"shared", "private", "adaptive"};
    double base_ipc = 0.0;
    for (const char *policy : policies) {
        SimConfig cfg;
        cfg.maxCycles = 60000;
        cfg.profileLen = 5000;
        cfg.epochLen = 100000;
        cfg.applyKv(args);
        cfg.llcPolicy = parseLlcPolicy(policy);

        GpuSystem gpu(cfg);
        gpu.setWorkload(0, WorkloadSuite::buildKernels(spec, cfg.seed));
        const RunResult r = gpu.run();
        if (base_ipc == 0.0)
            base_ipc = r.ipc;

        std::printf("  %-8s ipc=%8.2f (%.2fx) llc_miss=%.3f "
                    "resp/cyc=%.2f dram=%llu mode_end=%s "
                    "reconfig_stall=%llu\n",
                    policy, r.ipc, r.ipc / base_ipc, r.llcReadMissRate,
                    r.llcResponseRate,
                    static_cast<unsigned long long>(r.dramAccesses),
                    llcModeName(r.finalMode),
                    static_cast<unsigned long long>(
                        r.llcCtrl.reconfigStallCycles));
    }
    args.warnUnused();
    return 0;
}
