/**
 * @file
 * Shared helpers for the example drivers.
 *
 * Both `simulate` and `trace_tool` accept the same workload
 * description on the command line -- a Table-2 benchmark
 * (`workload=AN`) or an inline synthetic pattern (`pattern=zipf
 * shared_mb=4 ...`) -- so the parsing lives here once: a drifting
 * copy would make "record with trace_tool, compare with simulate"
 * silently compare different workloads.
 */

#ifndef AMSC_EXAMPLES_EXAMPLE_UTIL_HH
#define AMSC_EXAMPLES_EXAMPLE_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/kvargs.hh"
#include "sim/sim_config.hh"
#include "workloads/suite.hh"

namespace amsc
{

/** Build the kernel sequence described by the command line. */
inline std::vector<KernelInfo>
workloadFromArgs(const KvArgs &args, const SimConfig &cfg)
{
    if (args.has("workload")) {
        const WorkloadSpec &spec =
            WorkloadSuite::byName(args.getString("workload", "AN"));
        std::printf("workload: %s (%s), %.3f MB shared, class %s\n",
                    spec.abbr.c_str(), spec.fullName.c_str(),
                    spec.sharedMb,
                    workloadClassName(spec.klass).c_str());
        return WorkloadSuite::buildKernels(spec, cfg.seed);
    }
    // Synthetic workload described inline.
    TraceParams t;
    const std::string pattern =
        args.getString("pattern", "broadcast");
    if (pattern == "broadcast")
        t.pattern = AccessPattern::Broadcast;
    else if (pattern == "zipf")
        t.pattern = AccessPattern::ZipfShared;
    else if (pattern == "tiled")
        t.pattern = AccessPattern::TiledShared;
    else if (pattern == "stream")
        t.pattern = AccessPattern::PrivateStream;
    else
        fatal("unknown pattern '%s'", pattern.c_str());
    t.sharedLines = static_cast<std::uint64_t>(
        args.getDouble("shared_mb", 1.0) * 8192.0);
    t.sharedFraction = args.getDouble("shared_fraction", 0.8);
    t.zipfAlpha = args.getDouble("zipf_alpha", 0.6);
    t.writeFraction = args.getDouble("write_fraction", 0.05);
    t.atomicFraction = args.getDouble("atomic_fraction", 0.0);
    t.computePerMem = static_cast<std::uint32_t>(
        args.getUint("compute_per_mem", 4));
    t.memInstrsPerWarp = args.getUint("mem_instrs", 600);
    t.seed = cfg.seed;
    std::printf("workload: synthetic %s (%.2f MB shared)\n",
                pattern.c_str(),
                static_cast<double>(t.sharedLines) * 128.0 / 1048576);
    return {makeSyntheticKernel(
        "cli", t,
        static_cast<std::uint32_t>(args.getUint("ctas", 320)),
        static_cast<std::uint32_t>(args.getUint("warps", 8)))};
}

} // namespace amsc

#endif // AMSC_EXAMPLES_EXAMPLE_UTIL_HH
