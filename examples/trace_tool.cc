/**
 * @file
 * Warp-trace capture & replay tool.
 *
 * Subcommands (first positional argument):
 *
 *   record  run a workload, capturing every warp stream to a trace
 *           trace_tool record trace=an.trc workload=AN [key=value...]
 *           trace_tool record trace=z.trc pattern=zipf shared_mb=4 ...
 *   info    print a trace's manifest and embedded run summary
 *           trace_tool info trace=an.trc
 *   replay  re-run a trace under a (matching) configuration
 *           trace_tool replay trace=an.trc [key=value...]
 *   verify  record, then replay, and assert bit-identical RunResult
 *           trace_tool verify trace=an.trc workload=AN [key=value...]
 *
 * A replayed run reproduces the recorded run's metrics exactly
 * provided the SimConfig matches the recording; `verify` automates
 * that check in one process and exits non-zero on any drift.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/kvargs.hh"
#include "sim/gpu_system.hh"
#include "trace/recording_gen.hh"
#include "trace/replay_gen.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_writer.hh"
#include "workloads/suite.hh"

#include "example_util.hh"

using namespace amsc;

namespace
{

SimConfig
configFromArgs(const KvArgs &args)
{
    SimConfig cfg;
    cfg.maxCycles = 60000;
    cfg.profileLen = 5000;
    cfg.epochLen = 200000;
    cfg.applyKv(args);
    return cfg;
}

/** Produces the (recording-wrapped) kernels once the writer exists. */
using KernelBuilder = std::function<std::vector<KernelInfo>(
    const std::shared_ptr<TraceWriter> &)>;

/**
 * Kernel builder for the command line: Table-2 workloads go through
 * the suite's recording entry point, inline synthetic ones through
 * the generic wrapper.
 */
KernelBuilder
recordedWorkloadFromArgs(const KvArgs &args, const SimConfig &cfg)
{
    if (args.has("workload")) {
        const WorkloadSpec &spec =
            WorkloadSuite::byName(args.getString("workload", "AN"));
        std::printf("workload: %s (%s), class %s\n",
                    spec.abbr.c_str(), spec.fullName.c_str(),
                    workloadClassName(spec.klass).c_str());
        const std::uint64_t seed = cfg.seed;
        return [&spec,
                seed](const std::shared_ptr<TraceWriter> &writer) {
            return WorkloadSuite::buildRecordedKernels(spec, seed,
                                                       writer);
        };
    }
    return [&args, &cfg](const std::shared_ptr<TraceWriter> &writer) {
        return wrapKernelsForRecording(workloadFromArgs(args, cfg),
                                       writer);
    };
}

std::string
tracePath(const KvArgs &args)
{
    const std::string path = args.getString("trace");
    if (path.empty())
        fatal("missing trace=<file> argument");
    return path;
}

void
printRun(const char *tag, const RunResult &r)
{
    std::printf("%-8s cycles=%llu instrs=%llu ipc=%.6f "
                "llc=%llu missRate=%.6f dram=%llu%s\n",
                tag, static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions),
                r.ipc, static_cast<unsigned long long>(r.llcAccesses),
                r.llcReadMissRate,
                static_cast<unsigned long long>(r.dramAccesses),
                r.finishedWork ? "" : " (horizon reached)");
}

RunResult
recordRun(const SimConfig &cfg, const KernelBuilder &build,
          const std::string &path)
{
    auto writer = std::make_shared<TraceWriter>(path);
    RunResult r;
    {
        GpuSystem gpu(cfg);
        gpu.setWorkload(0, build(writer));
        r = gpu.run();
        // Leaving the scope destroys the GpuSystem, flushing every
        // live RecordingGen into the writer.
    }
    writer->setRunSummary(summarizeRun(r));
    writer->finalize();
    if (!r.finishedWork)
        warn("recorded run hit its cycle horizon; warps mid-stream "
             "were truncated and a replay will finish early");
    return r;
}

RunResult
replayRun(const SimConfig &cfg,
          const std::shared_ptr<const TraceReader> &reader)
{
    GpuSystem gpu(cfg);
    gpu.setWorkload(0, WorkloadSuite::buildReplayKernels(reader));
    return gpu.run();
}

bool
sameResult(const RunResult &a, const RunResult &b)
{
    return a.cycles == b.cycles &&
        a.instructions == b.instructions && a.ipc == b.ipc &&
        a.llcAccesses == b.llcAccesses &&
        a.dramAccesses == b.dramAccesses &&
        a.llcReadMissRate == b.llcReadMissRate;
}

int
cmdRecord(const KvArgs &args)
{
    const std::string path = tracePath(args);
    const SimConfig cfg = configFromArgs(args);
    const RunResult r =
        recordRun(cfg, recordedWorkloadFromArgs(args, cfg), path);
    printRun("recorded", r);
    std::printf("trace written to %s\n", path.c_str());
    return 0;
}

int
cmdInfo(const KvArgs &args)
{
    const TraceReader reader(tracePath(args));
    std::printf("trace:   %s (format v%u)\n", reader.path().c_str(),
                reader.version());
    std::printf("kernels: %zu\n", reader.kernels().size());
    for (const TraceKernel &k : reader.kernels()) {
        const std::uint64_t instrs = k.totalInstrs();
        const std::uint64_t bytes = k.totalPayloadBytes();
        std::printf("  %-16s %u CTAs x %u warps, %zu streams, "
                    "%llu instrs, %llu bytes (%.2f B/instr)\n",
                    k.name.c_str(), k.numCtas, k.warpsPerCta,
                    k.warps.size(),
                    static_cast<unsigned long long>(instrs),
                    static_cast<unsigned long long>(bytes),
                    instrs == 0 ? 0.0
                                : static_cast<double>(bytes) /
                            static_cast<double>(instrs));
    }
    const TraceRunSummary &s = reader.summary();
    if (s.valid) {
        std::printf("recorded run: cycles=%llu instrs=%llu "
                    "ipc=%.6f missRate=%.6f\n",
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<unsigned long long>(s.instructions),
                    s.ipc, s.llcReadMissRate);
    }
    return 0;
}

int
cmdReplay(const KvArgs &args)
{
    const std::string path = tracePath(args);
    const SimConfig cfg = configFromArgs(args);
    auto reader = std::make_shared<const TraceReader>(path);
    const RunResult r = replayRun(cfg, reader);
    printRun("replayed", r);

    const TraceRunSummary &s = reader->summary();
    if (s.valid) {
        const bool same = r.cycles == s.cycles &&
            r.instructions == s.instructions &&
            r.llcReadMissRate == s.llcReadMissRate;
        std::printf("recorded-run summary %s\n",
                    same ? "matches"
                         : "DIFFERS (configuration mismatch?)");
    }
    return 0;
}

int
cmdVerify(const KvArgs &args)
{
    const std::string path = tracePath(args);
    const SimConfig cfg = configFromArgs(args);
    const RunResult rec =
        recordRun(cfg, recordedWorkloadFromArgs(args, cfg), path);
    const RunResult rep = replayRun(
        cfg, std::make_shared<const TraceReader>(path));
    printRun("recorded", rec);
    printRun("replayed", rep);
    if (sameResult(rec, rep)) {
        std::printf("verify: PASS (replay reproduces the recorded "
                    "run bit-for-bit)\n");
        return 0;
    }
    if (!rec.finishedWork) {
        // A horizon-cut recording truncates warps mid-stream, so the
        // replay legitimately finishes early: not a subsystem fault.
        std::printf("verify: INCONCLUSIVE (the recording hit its "
                    "cycle horizon; raise max_cycles so the "
                    "workload completes)\n");
        return 2;
    }
    std::printf("verify: FAIL (replay diverged from the recorded "
                "run)\n");
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    if (args.positionals().empty())
        fatal("usage: trace_tool record|info|replay|verify "
              "trace=<file> [key=value...]");
    const std::string &cmd = args.positionals().front();

    int rc = 0;
    if (cmd == "record")
        rc = cmdRecord(args);
    else if (cmd == "info")
        rc = cmdInfo(args);
    else if (cmd == "replay")
        rc = cmdReplay(args);
    else if (cmd == "verify")
        rc = cmdVerify(args);
    else
        fatal("unknown subcommand '%s' (record|info|replay|verify)",
              cmd.c_str());
    args.warnUnused();
    return rc;
}
