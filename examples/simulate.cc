/**
 * @file
 * amsc's general-purpose simulator driver.
 *
 * Runs any suite workload (or a synthetic one described on the
 * command line) under any configuration and dumps the full statistics
 * tree plus the power/energy evaluation -- the binary a downstream
 * user scripts their own experiments with.
 *
 * Usage:
 *   simulate workload=AN llc_policy=adaptive [any SimConfig key=value]
 *   simulate pattern=broadcast shared_mb=2.0 shared_fraction=0.9 ...
 *   simulate workload=AN stats=1         # full per-component stats
 */

#include <cstdio>
#include <iostream>

#include "common/kvargs.hh"
#include "power/gpu_energy.hh"
#include "power/noc_power.hh"
#include "sim/gpu_system.hh"
#include "trace/recording_gen.hh"
#include "trace/replay_gen.hh"
#include "workloads/suite.hh"

#include "example_util.hh"

using namespace amsc;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    SimConfig cfg;
    cfg.maxCycles = 60000;
    cfg.profileLen = 5000;
    cfg.epochLen = 200000;
    cfg.applyKv(args);

    cfg.print(std::cout);
    // Trace hooks: writer outlives the GpuSystem so its destructor
    // finalizes the file after every warp stream has been flushed.
    std::shared_ptr<TraceWriter> writer;
    std::shared_ptr<const TraceReader> reader;
    GpuSystem gpu(cfg);
    if (!cfg.traceReplayPath.empty()) {
        reader =
            std::make_shared<const TraceReader>(cfg.traceReplayPath);
        std::printf("workload: replay of %s\n",
                    cfg.traceReplayPath.c_str());
        gpu.setWorkload(0, WorkloadSuite::buildReplayKernels(reader));
    } else if (!cfg.traceRecordPath.empty()) {
        writer = std::make_shared<TraceWriter>(cfg.traceRecordPath);
        gpu.setWorkload(
            0, wrapKernelsForRecording(workloadFromArgs(args, cfg),
                                       writer));
    } else {
        gpu.setWorkload(0, workloadFromArgs(args, cfg));
    }
    const RunResult r = gpu.run();
    if (writer) {
        writer->setRunSummary(summarizeRun(r));
        if (!r.finishedWork)
            warn("recorded run hit its cycle horizon; warps "
                 "mid-stream were truncated and a replay will "
                 "finish early");
    }

    std::printf("\n==== run summary ====\n");
    std::printf("cycles               %llu%s\n",
                static_cast<unsigned long long>(r.cycles),
                r.finishedWork ? " (workload complete)"
                               : " (horizon reached)");
    std::printf("instructions         %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("IPC                  %.2f\n", r.ipc);
    std::printf("LLC accesses         %llu (read miss rate %.3f)\n",
                static_cast<unsigned long long>(r.llcAccesses),
                r.llcReadMissRate);
    std::printf("LLC response rate    %.2f replies/cycle\n",
                r.llcResponseRate);
    std::printf("DRAM accesses        %llu\n",
                static_cast<unsigned long long>(r.dramAccesses));
    std::printf("NoC latency          req %.1f / rep %.1f cycles\n",
                r.avgRequestLatency, r.avgReplyLatency);
    std::printf("final LLC mode       %s\n",
                llcModeName(r.finalMode));
    std::printf("mode transitions     %llu to private, %llu to "
                "shared (%llu stall cycles)\n",
                static_cast<unsigned long long>(
                    r.llcCtrl.transitionsToPrivate),
                static_cast<unsigned long long>(
                    r.llcCtrl.transitionsToShared),
                static_cast<unsigned long long>(
                    r.llcCtrl.reconfigStallCycles));

    const NocPowerModel noc_model;
    const NocPowerResult noc =
        noc_model.evaluate(r.nocActivity, r.cycles);
    GpuActivity act = r.gpuActivity;
    act.nocEnergyUj = noc.totalEnergyUj();
    const GpuEnergyResult sys = GpuEnergyModel{}.evaluate(act);
    std::printf("NoC power            %.1f mW (area %.2f mm^2)\n",
                noc.totalPowerMw(), noc.totalAreaMm2());
    std::printf("system energy        %.1f uJ (core %.1f, dram %.1f, "
                "noc %.1f, static %.1f)\n",
                sys.totalUj(), sys.coreDynamicUj, sys.dramDynamicUj,
                sys.nocUj, sys.staticUj);

    if (args.getBool("stats", false)) {
        std::printf("\n==== full statistics ====\n");
        StatSet set("amsc");
        gpu.registerStats(set);
        set.dump(std::cout);
    }
    args.warnUnused();
    return 0;
}
