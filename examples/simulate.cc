/**
 * @file
 * amsc's general-purpose simulator driver.
 *
 * Runs any suite workload (or a synthetic one described on the
 * command line) under any configuration and dumps the full statistics
 * tree plus the power/energy evaluation -- the binary a downstream
 * user scripts their own experiments with.
 *
 * Usage:
 *   simulate workload=AN llc_policy=adaptive [any SimConfig key=value]
 *   simulate pattern=broadcast shared_mb=2.0 shared_fraction=0.9 ...
 *   simulate workload=AN stats=1         # full per-component stats
 */

#include <cstdio>
#include <iostream>

#include "common/kvargs.hh"
#include "power/gpu_energy.hh"
#include "power/noc_power.hh"
#include "sim/gpu_system.hh"
#include "workloads/suite.hh"

using namespace amsc;

namespace
{

std::vector<KernelInfo>
workloadFromArgs(const KvArgs &args, const SimConfig &cfg)
{
    if (args.has("workload")) {
        const WorkloadSpec &spec =
            WorkloadSuite::byName(args.getString("workload", "AN"));
        std::printf("workload: %s (%s), %.3f MB shared, class %s\n",
                    spec.abbr.c_str(), spec.fullName.c_str(),
                    spec.sharedMb,
                    workloadClassName(spec.klass).c_str());
        return WorkloadSuite::buildKernels(spec, cfg.seed);
    }
    // Synthetic workload described inline.
    TraceParams t;
    const std::string pattern =
        args.getString("pattern", "broadcast");
    if (pattern == "broadcast")
        t.pattern = AccessPattern::Broadcast;
    else if (pattern == "zipf")
        t.pattern = AccessPattern::ZipfShared;
    else if (pattern == "tiled")
        t.pattern = AccessPattern::TiledShared;
    else if (pattern == "stream")
        t.pattern = AccessPattern::PrivateStream;
    else
        fatal("unknown pattern '%s'", pattern.c_str());
    t.sharedLines = static_cast<std::uint64_t>(
        args.getDouble("shared_mb", 1.0) * 8192.0);
    t.sharedFraction = args.getDouble("shared_fraction", 0.8);
    t.zipfAlpha = args.getDouble("zipf_alpha", 0.6);
    t.writeFraction = args.getDouble("write_fraction", 0.05);
    t.atomicFraction = args.getDouble("atomic_fraction", 0.0);
    t.computePerMem = static_cast<std::uint32_t>(
        args.getUint("compute_per_mem", 4));
    t.memInstrsPerWarp = args.getUint("mem_instrs", 600);
    t.seed = cfg.seed;
    std::printf("workload: synthetic %s (%.2f MB shared)\n",
                pattern.c_str(),
                static_cast<double>(t.sharedLines) * 128.0 / 1048576);
    return {makeSyntheticKernel(
        "cli", t,
        static_cast<std::uint32_t>(args.getUint("ctas", 320)),
        static_cast<std::uint32_t>(args.getUint("warps", 8)))};
}

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    SimConfig cfg;
    cfg.maxCycles = 60000;
    cfg.profileLen = 5000;
    cfg.epochLen = 200000;
    cfg.applyKv(args);

    cfg.print(std::cout);
    GpuSystem gpu(cfg);
    gpu.setWorkload(0, workloadFromArgs(args, cfg));
    const RunResult r = gpu.run();

    std::printf("\n==== run summary ====\n");
    std::printf("cycles               %llu%s\n",
                static_cast<unsigned long long>(r.cycles),
                r.finishedWork ? " (workload complete)"
                               : " (horizon reached)");
    std::printf("instructions         %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("IPC                  %.2f\n", r.ipc);
    std::printf("LLC accesses         %llu (read miss rate %.3f)\n",
                static_cast<unsigned long long>(r.llcAccesses),
                r.llcReadMissRate);
    std::printf("LLC response rate    %.2f replies/cycle\n",
                r.llcResponseRate);
    std::printf("DRAM accesses        %llu\n",
                static_cast<unsigned long long>(r.dramAccesses));
    std::printf("NoC latency          req %.1f / rep %.1f cycles\n",
                r.avgRequestLatency, r.avgReplyLatency);
    std::printf("final LLC mode       %s\n",
                llcModeName(r.finalMode));
    std::printf("mode transitions     %llu to private, %llu to "
                "shared (%llu stall cycles)\n",
                static_cast<unsigned long long>(
                    r.llcCtrl.transitionsToPrivate),
                static_cast<unsigned long long>(
                    r.llcCtrl.transitionsToShared),
                static_cast<unsigned long long>(
                    r.llcCtrl.reconfigStallCycles));

    const NocPowerModel noc_model;
    const NocPowerResult noc =
        noc_model.evaluate(r.nocActivity, r.cycles);
    GpuActivity act = r.gpuActivity;
    act.nocEnergyUj = noc.totalEnergyUj();
    const GpuEnergyResult sys = GpuEnergyModel{}.evaluate(act);
    std::printf("NoC power            %.1f mW (area %.2f mm^2)\n",
                noc.totalPowerMw(), noc.totalAreaMm2());
    std::printf("system energy        %.1f uJ (core %.1f, dram %.1f, "
                "noc %.1f, static %.1f)\n",
                sys.totalUj(), sys.coreDynamicUj, sys.dramDynamicUj,
                sys.nocUj, sys.staticUj);

    if (args.getBool("stats", false)) {
        std::printf("\n==== full statistics ====\n");
        StatSet set("amsc");
        gpu.registerStats(set);
        set.dump(std::cout);
    }
    args.warnUnused();
    return 0;
}
