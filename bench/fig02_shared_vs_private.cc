/**
 * @file
 * Figure 2: normalized performance of a private vs a shared
 * memory-side LLC for all 17 workloads, grouped by class.
 *
 * Paper shape: private-cache-friendly apps gain (up to ~1.4x) from
 * private caching; shared-cache-friendly apps lose ~18% on average;
 * neutral apps are within noise.
 */

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig cfg = benchConfig(args);
    const SweepRunner runner = benchRunner(args);

    // Whole grid up front: (class, app) x {shared, private}.
    std::vector<SweepPoint> points;
    for (const WorkloadClass klass :
         {WorkloadClass::SharedFriendly, WorkloadClass::PrivateFriendly,
          WorkloadClass::Neutral}) {
        for (const WorkloadSpec &spec : WorkloadSuite::byClass(klass)) {
            points.push_back(
                policyPoint(cfg, spec, LlcPolicy::ForceShared));
            points.push_back(
                policyPoint(cfg, spec, LlcPolicy::ForcePrivate));
        }
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Figure 2: shared vs private memory-side LLC "
                "(normalized IPC)\n\n");
    std::printf("Config: %u SMs, %u clusters, %s NoC, %llu cycles/run"
                "\n\n",
                cfg.numSms, cfg.numClusters, "H-Xbar",
                static_cast<unsigned long long>(cfg.maxCycles));

    std::size_t idx = 0;
    for (const WorkloadClass klass :
         {WorkloadClass::SharedFriendly, WorkloadClass::PrivateFriendly,
          WorkloadClass::Neutral}) {
        std::printf("## (%c) %s applications\n\n",
                    klass == WorkloadClass::SharedFriendly ? 'a'
                        : klass == WorkloadClass::PrivateFriendly
                        ? 'b'
                        : 'c',
                    className(klass));
        std::printf("| app | shared LLC | private LLC | private/shared "
                    "|\n");
        printRule(4);

        std::vector<double> ratios;
        for (const WorkloadSpec &spec : WorkloadSuite::byClass(klass)) {
            const RunResult &shared = results[idx++];
            const RunResult &priv = results[idx++];
            const double ratio = priv.ipc / shared.ipc;
            ratios.push_back(ratio);
            std::printf("| %-6s | 1.00 | %.2f | %-24s |\n",
                        spec.abbr.c_str(), ratio,
                        bar(ratio, 1.6).c_str());
        }
        std::printf("| HM | 1.00 | %.2f | |\n\n",
                    harmonicMean(ratios));
    }
    args.warnUnused();
    return 0;
}
