/**
 * @file
 * Figure 3: inter-cluster locality under a shared LLC -- the fraction
 * of LLC lines accessed by 1 / 2 / 3-4 / 5-8 clusters within
 * 1000-cycle windows, per workload class.
 *
 * Paper shape: private-cache-friendly apps show >60% of lines shared
 * by 2+ clusters; neutral apps show almost none; shared-cache-friendly
 * apps sit in between (~20%).
 */

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    SimConfig cfg = benchConfig(args);
    cfg.trackSharing = true;
    const SweepRunner runner = benchRunner(args);

    // One shared-LLC run per workload; the post hook closes the last
    // tracker window and overwrites the result's sharing buckets with
    // the flushed values (collect() reads them mid-window otherwise).
    std::vector<SweepPoint> points;
    for (const WorkloadClass klass :
         {WorkloadClass::SharedFriendly, WorkloadClass::PrivateFriendly,
          WorkloadClass::Neutral}) {
        for (const WorkloadSpec &spec : WorkloadSuite::byClass(klass)) {
            SweepPoint p = policyPoint(cfg, spec,
                                       LlcPolicy::ForceShared);
            const Cycle flush_at = cfg.maxCycles + 1000;
            p.post = [flush_at](GpuSystem &gpu, RunResult &r) {
                gpu.llc().sharingTracker().flush(flush_at);
                for (std::size_t b = 0; b < 4; ++b) {
                    r.sharingBuckets[b] =
                        gpu.llc().sharingTracker().bucketFraction(b);
                }
            };
            points.push_back(std::move(p));
        }
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Figure 3: inter-cluster locality "
                "(%% of LLC lines, 1000-cycle windows)\n\n");

    std::size_t idx = 0;
    for (const WorkloadClass klass :
         {WorkloadClass::SharedFriendly, WorkloadClass::PrivateFriendly,
          WorkloadClass::Neutral}) {
        std::printf("## (%c) %s applications\n\n",
                    klass == WorkloadClass::SharedFriendly ? 'a'
                        : klass == WorkloadClass::PrivateFriendly
                        ? 'b'
                        : 'c',
                    className(klass));
        std::printf("| app | 1 cluster | 2 clusters | 3-4 clusters | "
                    "5-8 clusters | 2+ total |\n");
        printRule(6);

        std::vector<double> multi;
        for (const WorkloadSpec &spec : WorkloadSuite::byClass(klass)) {
            const RunResult &r = results[idx++];
            const double b1 = r.sharingBuckets[0];
            const double b2 = r.sharingBuckets[1];
            const double b34 = r.sharingBuckets[2];
            const double b58 = r.sharingBuckets[3];
            multi.push_back(b2 + b34 + b58);
            std::printf(
                "| %-6s | %5.1f%% | %5.1f%% | %5.1f%% | %5.1f%% | "
                "%5.1f%% |\n",
                spec.abbr.c_str(), b1 * 100, b2 * 100, b34 * 100,
                b58 * 100, (b2 + b34 + b58) * 100);
        }
        std::printf("| AVG | | | | | %5.1f%% |\n\n",
                    mean(multi) * 100);
    }
    args.warnUnused();
    return 0;
}
