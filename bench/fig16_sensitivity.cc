/**
 * @file
 * Figure 16: sensitivity of the adaptive LLC's benefit to address
 * mapping, channel width, SM count, L1 size and CTA scheduling.
 *
 * Each point reports the harmonic-mean adaptive-vs-shared IPC gain
 * over three private-cache-friendly workloads (AN, NN, MM).
 *
 * Paper shape: larger gains with the imbalanced Hynix mapping
 * (+31.1%), narrower channels (+38.2% at 16 B) and more SMs (+40% at
 * 160); smaller gains with a 128 KB L1 (+15%) and DCS scheduling
 * (+23.9%).
 */

#include <functional>

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

namespace
{

struct Point
{
    const char *group;
    const char *label;
    std::function<void(SimConfig &)> apply;
};

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig base = benchConfig(args);
    const SweepRunner runner = benchRunner(args);

    const std::vector<Point> points = {
        {"mapping", "PAE (default)", [](SimConfig &) {}},
        {"mapping", "Hynix",
         [](SimConfig &c) { c.mappingScheme = MappingScheme::Hynix; }},
        {"channel", "64 B",
         [](SimConfig &c) { c.channelWidthBytes = 64; }},
        {"channel", "32 B (default)", [](SimConfig &) {}},
        {"channel", "16 B",
         [](SimConfig &c) { c.channelWidthBytes = 16; }},
        {"#SM", "40",
         [](SimConfig &c) {
             // Constant SMs/cluster: clusters and slices scale.
             c.numSms = 40;
             c.numClusters = 4;
             c.slicesPerMc = 4;
         }},
        {"#SM", "80 (default)", [](SimConfig &) {}},
        {"#SM", "160",
         [](SimConfig &c) {
             c.numSms = 160;
             c.numClusters = 16;
             c.slicesPerMc = 16;
         }},
        {"L1", "48 KB (default)", [](SimConfig &) {}},
        {"L1", "64 KB",
         [](SimConfig &c) {
             c.l1SizeBytes = 64 * 1024;
             c.l1Assoc = 8;
         }},
        {"L1", "96 KB",
         [](SimConfig &c) { c.l1SizeBytes = 96 * 1024; }},
        {"L1", "128 KB",
         [](SimConfig &c) {
             c.l1SizeBytes = 128 * 1024;
             c.l1Assoc = 8;
         }},
        {"CTA sched", "two-level RR (default)", [](SimConfig &) {}},
        {"CTA sched", "BCS",
         [](SimConfig &c) { c.ctaPolicy = CtaPolicy::Bcs; }},
        {"CTA sched", "DCS",
         [](SimConfig &c) { c.ctaPolicy = CtaPolicy::Dcs; }},
    };
    const char *const names[] = {"AN", "NN", "MM"};

    // 15 sensitivity points x 3 workloads x {shared, adaptive}.
    std::vector<SweepPoint> grid;
    for (const Point &pt : points) {
        SimConfig cfg = base;
        pt.apply(cfg);
        for (const char *name : names) {
            const WorkloadSpec &spec = WorkloadSuite::byName(name);
            grid.push_back(
                policyPoint(cfg, spec, LlcPolicy::ForceShared));
            grid.push_back(
                policyPoint(cfg, spec, LlcPolicy::Adaptive));
        }
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, grid);

    std::printf("# Figure 16: sensitivity of the adaptive-LLC gain "
                "(AN/NN/MM harmonic mean)\n\n");
    std::printf("| dimension | point | shared | adaptive | gain |\n");
    printRule(5);

    std::size_t idx = 0;
    for (const Point &pt : points) {
        std::vector<double> ratios;
        for (std::size_t w = 0; w < 3; ++w) {
            const RunResult &s = results[idx++];
            const RunResult &a = results[idx++];
            ratios.push_back(a.ipc / s.ipc);
        }
        const double hm = harmonicMean(ratios);
        std::printf("| %-9s | %-22s | 1.00 | %.2f | %+5.1f%% |\n",
                    pt.group, pt.label, hm, (hm - 1.0) * 100.0);
    }
    std::printf("\nPaper: Hynix +31.1%%, 16 B channels +38.2%%, 64 B "
                "+22.6%%, 160 SMs +40%%, 128 KB L1 +15%%, DCS "
                "+23.9%%.\n");
    args.warnUnused();
    return 0;
}
