/**
 * @file
 * Figure 13: LLC miss rate for the shared-cache-friendly workloads
 * under shared, private and adaptive LLCs.
 *
 * Paper shape: the private organization raises the miss rate by 27.9
 * percentage points on average (up to 52.3, with LUD's miss rate
 * tripling); the adaptive LLC stays shared and tracks the shared miss
 * rate.
 */

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig cfg = benchConfig(args);
    const SweepRunner runner = benchRunner(args);

    std::vector<SweepPoint> points;
    std::vector<PolicyTriple> triples;
    for (const WorkloadSpec &spec :
         WorkloadSuite::byClass(WorkloadClass::SharedFriendly))
        triples.push_back(pushPolicyTriple(points, cfg, spec));
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Figure 13: LLC read miss rate, "
                "shared-cache-friendly apps\n\n");
    std::printf("| app | shared | private | adaptive | private delta "
                "|\n");
    printRule(5);

    std::size_t widx = 0;
    std::vector<double> deltas;
    for (const WorkloadSpec &spec :
         WorkloadSuite::byClass(WorkloadClass::SharedFriendly)) {
        const PolicyTriple &t = triples[widx++];
        const RunResult &s = results[t.shared];
        const RunResult &p = results[t.priv];
        const RunResult &a = results[t.adaptive];
        const double delta =
            (p.llcReadMissRate - s.llcReadMissRate) * 100.0;
        deltas.push_back(delta);
        std::printf("| %-6s | %.3f | %.3f | %.3f | %+.1f pp |\n",
                    spec.abbr.c_str(), s.llcReadMissRate,
                    p.llcReadMissRate, a.llcReadMissRate, delta);
    }
    std::printf("| AVG | | | | %+.1f pp |\n", mean(deltas));
    std::printf("\nPaper: +27.9 pp average, up to +52.3 pp; adaptive "
                "opts for the shared organization.\n");
    args.warnUnused();
    return 0;
}
