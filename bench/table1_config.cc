/**
 * @file
 * Table 1: the baseline GPU architecture configuration.
 *
 * Prints the simulated configuration in the paper's Table-1 format,
 * after applying any key=value overrides, plus the derived geometry
 * the simulator computes from it.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "cache/atd.hh"

using namespace amsc;
using namespace amsc::bench;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    SimConfig cfg;
    cfg.applyKv(args);

    std::printf("# Table 1: baseline GPU architecture\n\n");
    cfg.print(std::cout);

    std::printf("\nDerived geometry:\n");
    std::printf("  L1 sets/ways           %u x %u\n",
                static_cast<unsigned>(cfg.l1SizeBytes /
                                      cfg.lineBytes / cfg.l1Assoc),
                cfg.l1Assoc);
    std::printf("  LLC slice sets/ways    %u x %u\n",
                static_cast<unsigned>(cfg.llcSliceBytes /
                                      cfg.lineBytes / cfg.llcAssoc),
                cfg.llcAssoc);
    std::printf("  LLC slices total       %u\n", cfg.numSlices());
    std::printf("  SMs per cluster        %u\n", cfg.smsPerCluster());
    std::printf("  DRAM bus               %u B/cycle/MC "
                "(~%0.0f GB/s aggregate)\n",
                cfg.dramBusBytesPerCycle,
                cfg.dramBusBytesPerCycle * cfg.numMcs * 1.4);
    std::printf("  Read reply flits       %u (at %u B channels)\n",
                (16u + cfg.lineBytes + cfg.channelWidthBytes - 1) /
                    cfg.channelWidthBytes,
                cfg.channelWidthBytes);

    const LlcParams lp = cfg.buildLlcParams();
    Atd atd(lp.profiler.atd);
    std::printf("\nReconfiguration hardware (paper: 448 B total):\n");
    std::printf("  ATD cost               %llu B\n",
                static_cast<unsigned long long>(
                    atd.hardwareCostBytes()));
    std::printf("  LSP counters           %u x 16-bit = %u B\n",
                cfg.numMcs, cfg.numMcs * 2);
    args.warnUnused();
    return 0;
}
