/**
 * @file
 * Ablation: open-loop LLM-inference serving under the adaptive LLC.
 *
 * The paper's evaluation (and fig11/fig15) drives closed workloads:
 * a fixed kernel list, every byte of work known at t=0. Serving
 * inverts that -- requests arrive by a Poisson process over a Zipf
 * tenant mix and the phase chain (prefill -> decode -> KV-append) is
 * materialized at runtime by the request driver. This bench sweeps
 * batch capacity x tenant population x LLC policy over the same grid
 * as scenarios/serving_llm.scn and reports the serving-side metrics
 * (completed requests, latency percentiles, batch occupancy, queue
 * depth) next to IPC, so the "does adaptivity help an agitated,
 * phase-mixed workload" question gets a direct answer.
 *
 * Expect the spread to narrow at batch 2 (the queue saturates and
 * every policy is arrival-limited) and open up at batch 8, where
 * decode's Zipf-shared KV reuse rewards the shared organization and
 * KV-append's write streams reward the private one -- the adaptive
 * policy tracks the phase mix per epoch.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "workloads/llm_inference.hh"

using namespace amsc;
using namespace amsc::bench;

namespace
{

const std::uint32_t kBatches[] = {2, 8};
const std::uint32_t kTenants[] = {2, 8};
const LlcPolicy kPolicies[] = {LlcPolicy::ForceShared,
                               LlcPolicy::ForcePrivate,
                               LlcPolicy::Adaptive};

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    SimConfig base = benchConfig(args);
    // Serving needs a longer horizon than the 60 K figure default to
    // drain the request queue; keep any explicit max_cycles override.
    if (!args.has("max_cycles")) {
        base.maxCycles = 120000;
        if (args.getBool("quick", false))
            base.maxCycles /= 4;
    }
    base.servingRequests = 24;
    base.servingCtx = 128;
    base.servingDecode = 8;
    base.llmDModel = 512;
    base.llmLayers = 4;
    base.servingRate = 4.0;
    const SweepRunner runner = benchRunner(args);

    // Same axis nesting as the scenario: serving_batch (slowest),
    // serving_tenants, llc_policy (fastest).
    std::vector<SweepPoint> points;
    for (const std::uint32_t batch : kBatches) {
        for (const std::uint32_t tenants : kTenants) {
            for (const LlcPolicy policy : kPolicies) {
                SweepPoint p;
                p.cfg = base;
                p.cfg.servingBatch = batch;
                p.cfg.servingTenants = tenants;
                p.cfg.llcPolicy = policy;
                p.label = "b" + std::to_string(batch) + "/t" +
                    std::to_string(tenants) + "/" +
                    llcPolicyName(policy);
                p.setup = [](GpuSystem &gpu) {
                    gpu.setProgram(
                        0, makeLlmInferenceProgram(
                               llmServingParamsFromConfig(
                                   gpu.config(), 0)));
                };
                points.push_back(std::move(p));
            }
        }
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Ablation: open-loop LLM serving "
                "(batch x tenants x LLC policy)\n\n");
    std::printf("Poisson arrivals at %.1f req/Kcycle over a "
                "Zipf(%.1f) tenant mix; %u requests admitted, "
                "ctx=%u dec=%u d_model=%u layers=%u.\n\n",
                base.servingRate, base.servingZipfAlpha,
                base.servingRequests, base.servingCtx,
                base.servingDecode, base.llmDModel, base.llmLayers);
    std::size_t idx = 0;
    for (const std::uint32_t batch : kBatches) {
        for (const std::uint32_t tenants : kTenants) {
            std::printf("## batch %u, %u tenants\n\n", batch,
                        tenants);
            std::printf("| policy | done | p50 lat | p99 lat | "
                        "batch occ | queue | IPC | p50 vs shared "
                        "|\n");
            printRule(8);
            const double base_p50 = results[idx].reqLatencyP50;
            for (const LlcPolicy policy : kPolicies) {
                const RunResult &r = results[idx];
                std::printf(
                    "| %s | %llu/%u | %.0f | %.0f | %.2f | %.1f | "
                    "%.3f | %s |\n",
                    llcPolicyName(policy).c_str(),
                    static_cast<unsigned long long>(
                        r.requestsCompleted),
                    base.servingRequests, r.reqLatencyP50,
                    r.reqLatencyP99, r.batchOccupancy,
                    r.queueDepthMean, r.ipc,
                    bar(base_p50 > 0.0 && r.reqLatencyP50 > 0.0
                            ? base_p50 / r.reqLatencyP50
                            : 0.0,
                        1.25)
                        .c_str());
                ++idx;
            }
            std::printf("\n");
        }
    }
    std::printf("Longer bar = lower p50 latency relative to the "
                "forced-shared point of the same grid cell. The "
                "tick and event cores produce these rows "
                "bit-identically (tests/test_serving.cc).\n");
    args.warnUnused();
    return 0;
}
