/**
 * @file
 * Ablation: cache-line size (paper section 5).
 *
 * The paper evaluates 256 B lines and reports ~10% more sharers per
 * cache line, noting that more sharers exacerbate the LLC bandwidth
 * problem adaptive caching addresses. This bench measures, for 128 B
 * and 256 B lines: the average sharer count of LLC-resident lines,
 * and the shared/private/adaptive IPC of a private-friendly workload.
 */

#include <memory>

#include "bench/bench_util.hh"
#include "common/bitutils.hh"

using namespace amsc;
using namespace amsc::bench;

namespace
{

/**
 * Coarsens a 128 B-granular address stream to wider lines: adjacent
 * granules merge into one line, which is how wider lines acquire more
 * sharers.
 */
class CoarsenedGen : public WarpTraceGen
{
  public:
    CoarsenedGen(std::unique_ptr<WarpTraceGen> inner, unsigned shift)
        : inner_(std::move(inner)), shift_(shift)
    {}

    bool
    nextInstr(WarpInstr &out, Cycle now) override
    {
        if (!inner_->nextInstr(out, now))
            return false;
        for (std::uint32_t i = 0; i < out.numAccesses; ++i)
            out.addrs[i] >>= shift_;
        return true;
    }

  private:
    std::unique_ptr<WarpTraceGen> inner_;
    unsigned shift_;
};

std::vector<KernelInfo>
coarsenedKernels(const WorkloadSpec &spec, std::uint64_t seed,
                 unsigned shift)
{
    std::vector<KernelInfo> kernels =
        WorkloadSuite::buildKernels(spec, seed);
    if (shift == 0)
        return kernels;
    for (KernelInfo &k : kernels) {
        const WarpGenFactory inner = k.makeGen;
        k.makeGen = [inner, shift](CtaId cta, std::uint32_t warp) {
            return std::make_unique<CoarsenedGen>(inner(cta, warp),
                                                  shift);
        };
    }
    return kernels;
}

double
avgSharers(GpuSystem &gpu)
{
    std::uint64_t lines = 0;
    std::uint64_t sharers = 0;
    for (SliceId s = 0; s < gpu.llc().numSlices(); ++s) {
        gpu.llc().slice(s).tags().forEachLine(
            [&](const CacheLine &l) {
                ++lines;
                sharers += popCount(l.accessorMask);
            });
    }
    return lines == 0 ? 0.0
                      : static_cast<double>(sharers) /
            static_cast<double>(lines);
}

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig base = benchConfig(args);
    const WorkloadSpec &spec = WorkloadSuite::byName("NN");

    std::printf("# Ablation: cache line size (workload NN)\n\n");
    std::printf("| line size | avg sharers/line | shared IPC | "
                "private/shared | adaptive/shared |\n");
    printRule(5);

    double sharers128 = 0.0;
    double sharers256 = 0.0;
    for (const std::uint32_t line_bytes : {128u, 256u}) {
        SimConfig cfg = base;
        cfg.lineBytes = line_bytes;
        // Keep geometry legal: 48 KB L1 6-way (64/32 sets), 96 KB
        // slice 16-way (48/24 sets), 2 KB rows (16/8 lines).
        double sharers = 0.0;
        double shared_ipc = 0.0;
        double ratios[2] = {0.0, 0.0};
        int i = 0;
        const unsigned shift = line_bytes == 128 ? 0 : 1;
        for (const LlcPolicy policy :
             {LlcPolicy::ForceShared, LlcPolicy::ForcePrivate,
              LlcPolicy::Adaptive}) {
            SimConfig c = cfg;
            c.llcPolicy = policy;
            GpuSystem gpu(c);
            gpu.setWorkload(0,
                            coarsenedKernels(spec, c.seed, shift));
            const RunResult r = gpu.run();
            if (policy == LlcPolicy::ForceShared) {
                shared_ipc = r.ipc;
                sharers = avgSharers(gpu);
            } else {
                ratios[i++] = r.ipc / shared_ipc;
            }
        }
        if (line_bytes == 128)
            sharers128 = sharers;
        else
            sharers256 = sharers;
        std::printf("| %u B | %.2f | %.1f | %.2f | %.2f |\n",
                    line_bytes, sharers, shared_ipc, ratios[0],
                    ratios[1]);
    }
    std::printf("\nSharer increase at 256 B: %+.1f%% (paper: ~+10%%, "
                "\"more sharers per line further exacerbates the LLC "
                "bandwidth problem\")\n",
                (sharers256 / sharers128 - 1.0) * 100.0);
    args.warnUnused();
    return 0;
}
