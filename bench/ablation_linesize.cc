/**
 * @file
 * Ablation: cache-line size (paper section 5).
 *
 * The paper evaluates 256 B lines and reports ~10% more sharers per
 * cache line, noting that more sharers exacerbate the LLC bandwidth
 * problem adaptive caching addresses. This bench measures, for 128 B
 * and 256 B lines: the average sharer count of LLC-resident lines,
 * and the shared/private/adaptive IPC of a private-friendly workload.
 */

#include <array>
#include <memory>

#include "bench/bench_util.hh"
#include "common/bitutils.hh"

using namespace amsc;
using namespace amsc::bench;

namespace
{

/**
 * Coarsens a 128 B-granular address stream to wider lines: adjacent
 * granules merge into one line, which is how wider lines acquire more
 * sharers.
 */
class CoarsenedGen : public WarpTraceGen
{
  public:
    CoarsenedGen(std::unique_ptr<WarpTraceGen> inner, unsigned shift)
        : inner_(std::move(inner)), shift_(shift)
    {}

    bool
    nextInstr(WarpInstr &out, Cycle now) override
    {
        if (!inner_->nextInstr(out, now))
            return false;
        for (std::uint32_t i = 0; i < out.numAccesses; ++i)
            out.addrs[i] >>= shift_;
        return true;
    }

  private:
    std::unique_ptr<WarpTraceGen> inner_;
    unsigned shift_;
};

std::vector<KernelInfo>
coarsenedKernels(const WorkloadSpec &spec, std::uint64_t seed,
                 unsigned shift)
{
    std::vector<KernelInfo> kernels =
        WorkloadSuite::buildKernels(spec, seed);
    if (shift == 0)
        return kernels;
    for (KernelInfo &k : kernels) {
        const WarpGenFactory inner = k.makeGen;
        k.makeGen = [inner, shift](CtaId cta, std::uint32_t warp) {
            return std::make_unique<CoarsenedGen>(inner(cta, warp),
                                                  shift);
        };
    }
    return kernels;
}

double
avgSharers(GpuSystem &gpu)
{
    std::uint64_t lines = 0;
    std::uint64_t sharers = 0;
    for (SliceId s = 0; s < gpu.llc().numSlices(); ++s) {
        gpu.llc().slice(s).tags().forEachLine(
            [&](const CacheLine &l) {
                ++lines;
                sharers += popCount(l.accessorMask);
            });
    }
    return lines == 0 ? 0.0
                      : static_cast<double>(sharers) /
            static_cast<double>(lines);
}

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig base = benchConfig(args);
    const SweepRunner runner = benchRunner(args);
    const WorkloadSpec &spec = WorkloadSuite::byName("NN");

    // 2 line sizes x 3 policies; the shared points additionally
    // sample the LLC's resident sharer counts after the run.
    const LlcPolicy policies[] = {LlcPolicy::ForceShared,
                                  LlcPolicy::ForcePrivate,
                                  LlcPolicy::Adaptive};
    std::vector<SweepPoint> points;
    std::array<double, 2> sharer_slots{};
    std::size_t slot = 0;
    for (const std::uint32_t line_bytes : {128u, 256u}) {
        const unsigned shift = line_bytes == 128 ? 0 : 1;
        for (const LlcPolicy policy : policies) {
            SweepPoint p;
            p.cfg = base;
            p.cfg.lineBytes = line_bytes;
            // Keep geometry legal: 48 KB L1 6-way (64/32 sets), 96 KB
            // slice 16-way (48/24 sets), 2 KB rows (16/8 lines).
            p.cfg.llcPolicy = policy;
            const std::uint64_t seed = p.cfg.seed;
            p.setup = [&spec, seed, shift](GpuSystem &gpu) {
                gpu.setWorkload(0,
                                coarsenedKernels(spec, seed, shift));
            };
            if (policy == LlcPolicy::ForceShared) {
                double *out = &sharer_slots[slot++];
                p.post = [out](GpuSystem &gpu, RunResult &) {
                    *out = avgSharers(gpu);
                };
            }
            p.label = spec.abbr + "@" + std::to_string(line_bytes);
            points.push_back(std::move(p));
        }
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Ablation: cache line size (workload NN)\n\n");
    std::printf("| line size | avg sharers/line | shared IPC | "
                "private/shared | adaptive/shared |\n");
    printRule(5);

    const double sharers128 = sharer_slots[0];
    const double sharers256 = sharer_slots[1];
    std::size_t idx = 0;
    for (const std::uint32_t line_bytes : {128u, 256u}) {
        const double shared_ipc = results[idx].ipc;
        const double rp = results[idx + 1].ipc / shared_ipc;
        const double ra = results[idx + 2].ipc / shared_ipc;
        std::printf("| %u B | %.2f | %.1f | %.2f | %.2f |\n",
                    line_bytes,
                    line_bytes == 128 ? sharers128 : sharers256,
                    shared_ipc, rp, ra);
        idx += 3;
    }
    std::printf("\nSharer increase at 256 B: %+.1f%% (paper: ~+10%%, "
                "\"more sharers per line further exacerbates the LLC "
                "bandwidth problem\")\n",
                (sharers256 / sharers128 - 1.0) * 100.0);
    args.warnUnused();
    return 0;
}
