/**
 * @file
 * Figure 12: LLC response rate for the private-cache-friendly
 * workloads under shared, private and adaptive LLCs.
 *
 * Paper shape: private caching raises the response rate by ~1.35x on
 * average (up to 1.46x) because replicated shared lines are served
 * from multiple slices in parallel; adaptive matches private.
 */

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig cfg = benchConfig(args);
    const SweepRunner runner = benchRunner(args);
    const std::uint32_t reply_flits =
        (16 + cfg.lineBytes + cfg.channelWidthBytes - 1) /
        cfg.channelWidthBytes;

    std::vector<SweepPoint> points;
    std::vector<PolicyTriple> triples;
    for (const WorkloadSpec &spec :
         WorkloadSuite::byClass(WorkloadClass::PrivateFriendly))
        triples.push_back(pushPolicyTriple(points, cfg, spec));
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Figure 12: LLC response rate (flits/cycle), "
                "private-cache-friendly apps\n\n");
    std::printf("| app | shared | private | adaptive | "
                "private/shared |\n");
    printRule(5);

    std::size_t widx = 0;
    std::vector<double> ratios;
    for (const WorkloadSpec &spec :
         WorkloadSuite::byClass(WorkloadClass::PrivateFriendly)) {
        const PolicyTriple &t = triples[widx++];
        const RunResult &s = results[t.shared];
        const RunResult &p = results[t.priv];
        const RunResult &a = results[t.adaptive];
        const double fs = s.llcResponseRate * reply_flits;
        const double fp = p.llcResponseRate * reply_flits;
        const double fa = a.llcResponseRate * reply_flits;
        ratios.push_back(fp / fs);
        std::printf("| %-6s | %5.2f | %5.2f | %5.2f | %.2fx |\n",
                    spec.abbr.c_str(), fs, fp, fa, fp / fs);
    }
    std::printf("| HM | | | | %.2fx |\n", harmonicMean(ratios));
    std::printf("\nPaper: private caching raises LLC response rate "
                "1.35x on average (up to 1.46x).\n");
    args.warnUnused();
    return 0;
}
