/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot paths:
 * cache lookups, MSHR churn, address mapping, Zipf sampling, router
 * ticks and whole-system cycles per second.
 */

#include <benchmark/benchmark.h>

#include "cache/tag_array.hh"
#include "common/rng.hh"
#include "mem/address_mapping.hh"
#include "mem/memory_controller.hh"
#include "noc/network_factory.hh"
#include "sim/gpu_system.hh"
#include "workloads/suite.hh"

using namespace amsc;

static void
BM_TagArrayAccess(benchmark::State &state)
{
    TagArray tags(48, 16);
    Eviction ev;
    for (Addr a = 0; a < 48 * 16; ++a)
        tags.insert(a, 0, ev);
    Rng rng(1);
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tags.access(rng.below(48 * 16 * 2), ++now));
    }
}
BENCHMARK(BM_TagArrayAccess);

static void
BM_MshrAllocateComplete(benchmark::State &state)
{
    MshrFile<std::uint32_t> mshrs(64, 16);
    Addr a = 0;
    for (auto _ : state) {
        mshrs.allocate(a, 1);
        mshrs.allocate(a, 2);
        benchmark::DoNotOptimize(mshrs.complete(a));
        ++a;
    }
}
BENCHMARK(BM_MshrAllocateComplete);

static void
BM_AddressMappingPae(benchmark::State &state)
{
    MappingParams mp;
    AddressMapping m(mp);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.decode(a));
        benchmark::DoNotOptimize(m.sliceWithinMc(a));
        ++a;
    }
}
BENCHMARK(BM_AddressMappingPae);

static void
BM_ZipfSample(benchmark::State &state)
{
    ZipfSampler z(static_cast<std::uint64_t>(state.range(0)), 0.8);
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(z.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(1 << 16)->Arg(1 << 20);

static void
BM_HXbarTickLoaded(benchmark::State &state)
{
    NocParams p;
    p.topology = NocTopology::Hierarchical;
    auto net = makeNetwork(p);
    Rng rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        for (SmId sm = 0; sm < p.numSms; sm += 7) {
            if (net->canInjectRequest(sm)) {
                NocMessage m;
                m.src = sm;
                m.dst = static_cast<SliceId>(
                    rng.below(p.numSlices()));
                m.sizeBytes = 16;
                net->injectRequest(m, now);
            }
        }
        net->tick(now);
        for (SliceId s = 0; s < p.numSlices(); ++s) {
            while (net->hasRequestFor(s))
                net->popRequestFor(s, now);
        }
        ++now;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_HXbarTickLoaded);

static void
BM_MemoryControllerTick(benchmark::State &state)
{
    DramParams d;
    MemoryController mc(0, d);
    mc.setReadCallback([](const DramRequest &, Cycle) {});
    Rng rng(9);
    Cycle now = 0;
    for (auto _ : state) {
        if (mc.canAccept()) {
            DramRequest r;
            r.bank = static_cast<std::uint32_t>(rng.below(16));
            r.row = rng.below(64);
            mc.enqueue(r, now);
        }
        mc.tick(now);
        ++now;
    }
}
BENCHMARK(BM_MemoryControllerTick);

static void
BM_FullSystemCycle(benchmark::State &state)
{
    SimConfig cfg;
    cfg.maxCycles = 1u << 30;
    GpuSystem gpu(cfg);
    gpu.setWorkload(0, WorkloadSuite::buildKernels(
                           WorkloadSuite::byName("AN"), 1));
    gpu.step(2000); // warm up
    for (auto _ : state)
        gpu.step(1);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullSystemCycle);

BENCHMARK_MAIN();
