/**
 * @file
 * Core performance harness: measures the simulator's own speed and
 * the sweep engine's thread scaling, and emits BENCH_core.json for
 * the performance trajectory (docs/performance.md).
 *
 * Phases:
 *   1. core throughput -- representative single runs on one thread:
 *      simulated cycles/sec and instructions/sec of the cycle core.
 *   1b. DRAM-bound microbenchmark -- a streaming workload through a
 *      16 KB LLC, so nearly every access reaches the memory
 *      controllers: tracks the memory model's cost (the complete
 *      timing engine: activation windows, refresh, turnaround).
 *   1d. checkpoint overhead -- the same adaptive point with periodic
 *      checkpointing off vs every ~1/8 horizon; results must stay
 *      bit-identical (crash-safety may not perturb the simulation)
 *      and the wall-clock delta is the tracked cost.
 *   1e. event-core speedup -- an idle-heavy microbenchmark (one
 *      resident CTA streaming all-miss lines with long latencies)
 *      run under sim_mode=tick and sim_mode=event, once per NoC
 *      topology (smoke: ideal + hxbar; full: all four). Per
 *      topology, results must be bit-identical and the event driver
 *      must not be slower than the tick loop (both hard gates) --
 *      a flit crossbar whose event advertisement degenerates to
 *      `now + 1` fails the speedup gate here.
 *   1f. serving throughput -- a decode-heavy open-loop llm_inference
 *      run (Poisson arrivals, runtime-materialized phase chains)
 *      under sim_mode=tick and sim_mode=event. Bit-identical results
 *      are a hard gate: the request driver advertises exact
 *      next-arrival cycles and any event-core drift past one shows
 *      up here. Tracks the simulator's cost on agitated,
 *      arrival-driven workloads next to the closed-workload phases.
 *   2. fig11 sweep scaling -- the Figure-11 grid (workloads x
 *      {shared, private, adaptive}) executed at 1/2/4/8 threads;
 *      reports wall clock per sweep and speedup vs 1 thread
 *      (ratios are skipped when the host has 1 hardware thread).
 *
 * Every multi-threaded sweep is compared field-by-field against the
 * single-threaded reference (identicalResults); any mismatch is
 * nondeterminism and fails the harness (exit 1). `smoke=1` runs a
 * reduced grid on {1, 2} threads for CI.
 *
 * Keys: out=BENCH_core.json  smoke=1 (or `--smoke`)  threads (extra
 * count to probe)
 * plus the usual SimConfig overrides (see bench_util.hh).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "noc/network_factory.hh"
#include "workloads/llm_inference.hh"
#include "workloads/trace_gen.hh"

using namespace amsc;
using namespace amsc::bench;

namespace
{

double
wallSeconds(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    bool smoke = args.getBool("smoke", false);
    for (const std::string &pos : args.positionals())
        smoke = smoke || pos == "--smoke" || pos == "smoke";
    const std::string out_path =
        args.getString("out", "BENCH_core.json");

    SimConfig cfg = benchConfig(args);
    if (smoke) {
        cfg.maxCycles /= 4;
        cfg.profileLen /= 4;
    }

    // ---- phase 1: core throughput (single runs, one thread) -------
    const std::vector<std::string> core_apps =
        smoke ? std::vector<std::string>{"AN", "LUD"}
              : std::vector<std::string>{"AN", "LUD", "BP", "MM"};
    std::uint64_t core_cycles = 0;
    std::uint64_t core_instrs = 0;
    const double core_wall = wallSeconds([&]() {
        for (const std::string &name : core_apps) {
            const RunResult r = runWorkload(
                cfg, WorkloadSuite::byName(name),
                LlcPolicy::Adaptive);
            core_cycles += r.cycles;
            core_instrs += r.instructions;
        }
    });
    const double cycles_per_sec =
        static_cast<double>(core_cycles) / core_wall;
    const double instrs_per_sec =
        static_cast<double>(core_instrs) / core_wall;
    std::printf("core: %llu cycles, %llu instrs in %.2f s "
                "(%.0f cycles/s, %.0f instrs/s)\n",
                static_cast<unsigned long long>(core_cycles),
                static_cast<unsigned long long>(core_instrs),
                core_wall, cycles_per_sec, instrs_per_sec);

    // ---- phase 1b: DRAM-bound microbenchmark ----------------------
    // A 16 KB LLC in front of a streaming workload pushes ~every
    // access to DRAM; simulation throughput here is dominated by the
    // memory controllers, so BENCH_core.json tracks the timing
    // model's cost point by point.
    SimConfig dram_cfg = cfg;
    dram_cfg.llcSliceBytes = 16 * 1024;
    std::uint64_t dram_cycles = 0;
    std::uint64_t dram_accesses = 0;
    const double dram_wall = wallSeconds([&]() {
        const RunResult r = runWorkload(
            dram_cfg, WorkloadSuite::byName("VA"),
            LlcPolicy::ForceShared);
        dram_cycles = r.cycles;
        dram_accesses = r.dramAccesses;
    });
    const double dram_cycles_per_sec =
        static_cast<double>(dram_cycles) / dram_wall;
    std::printf("dram-bound: %llu cycles, %llu DRAM accesses in "
                "%.2f s (%.0f cycles/s)\n",
                static_cast<unsigned long long>(dram_cycles),
                static_cast<unsigned long long>(dram_accesses),
                dram_wall, dram_cycles_per_sec);

    // ---- phase 1c: timeline overhead (off / null / file) ----------
    // The observability contract is zero perturbation and near-zero
    // disabled cost; this phase tracks the enabled cost. Three runs
    // of the same adaptive point: no recorder, the full observer
    // wiring into a NullTimelineSink (observation cost), and a real
    // Perfetto file sink (observation + serialization cost). The
    // results must be bit-identical -- a difference is a
    // perturbation bug and fails the harness like nondeterminism.
    SimConfig tl_off = cfg;
    SimConfig tl_null = cfg;
    tl_null.timeline = true;
    SimConfig tl_file = cfg;
    tl_file.timelineOut = "BENCH_timeline.json";
    RunResult tl_results[3];
    double tl_walls[3];
    const SimConfig *tl_cfgs[3] = {&tl_off, &tl_null, &tl_file};
    for (int v = 0; v < 3; ++v) {
        tl_walls[v] = wallSeconds([&]() {
            tl_results[v] =
                runWorkload(*tl_cfgs[v], WorkloadSuite::byName("AN"),
                            LlcPolicy::Adaptive);
        });
    }
    bool tl_bit_exact =
        identicalResults(tl_results[0], tl_results[1]) &&
        identicalResults(tl_results[0], tl_results[2]);
    const double tl_null_pct =
        100.0 * (tl_walls[1] / tl_walls[0] - 1.0);
    const double tl_file_pct =
        100.0 * (tl_walls[2] / tl_walls[0] - 1.0);
    std::printf("timeline overhead: off %.3f s, null %.3f s "
                "(%+.1f%%), file %.3f s (%+.1f%%), bit-exact: %s\n",
                tl_walls[0], tl_walls[1], tl_null_pct, tl_walls[2],
                tl_file_pct, tl_bit_exact ? "yes" : "NO");

    // ---- phase 1d: checkpoint overhead (off / every-N) ------------
    // Crash-safety must be pay-as-you-go: periodic checkpoints add
    // serialization + atomic-write cost but may never perturb the
    // simulation. Two runs of the same adaptive point, one with
    // checkpoint_every at ~1/8 of the horizon; bit-identical results
    // are a hard gate, the wall-clock delta is the tracked cost.
    SimConfig ck_on = cfg;
    ck_on.checkpointEvery = std::max<std::uint64_t>(
        1, cfg.maxCycles / 8);
    ck_on.checkpointPath = "BENCH_ckpt.bin";
    RunResult ck_results[2];
    double ck_walls[2];
    const SimConfig *ck_cfgs[2] = {&cfg, &ck_on};
    for (int v = 0; v < 2; ++v) {
        ck_walls[v] = wallSeconds([&]() {
            ck_results[v] =
                runWorkload(*ck_cfgs[v], WorkloadSuite::byName("AN"),
                            LlcPolicy::Adaptive);
        });
    }
    std::remove("BENCH_ckpt.bin");
    const bool ck_bit_exact =
        identicalResults(ck_results[0], ck_results[1]);
    const double ck_pct =
        100.0 * (ck_walls[1] / ck_walls[0] - 1.0);
    std::printf("checkpoint overhead: off %.3f s, every-%llu %.3f s "
                "(%+.1f%%), bit-exact: %s\n",
                ck_walls[0],
                static_cast<unsigned long long>(ck_on.checkpointEvery),
                ck_walls[1], ck_pct, ck_bit_exact ? "yes" : "NO");

    // ---- phase 1e: event-core speedup (sim_mode tick vs event) ----
    // The workload class the event driver exists for: one resident
    // CTA whose private stream misses everywhere plus long LLC/DRAM
    // latencies, so the machine spends most cycles waiting on exact
    // component events that the event core jumps across. Measured
    // once per NoC topology: the ideal network and the flit-level
    // crossbars each advertise their own exact events (router
    // head-of-line flits, channel flit/credit fronts -- see
    // docs/performance.md), and a topology whose advertisement
    // silently degenerates to `now + 1` shows up here as a speedup
    // collapse. Per topology, bit-identical results are a hard gate
    // (the two drivers are contractually the same simulator) and the
    // event run regressing below tick speed fails the harness: the
    // idle-heavy point is exactly where the jump machinery must pay
    // off. Smoke keeps one flit crossbar (hxbar, the paper's
    // baseline); the full run covers all four topologies.
    struct EventTopoRow
    {
        NocTopology topo = NocTopology::Ideal;
        std::uint64_t cycles = 0;
        double tick_seconds = 0.0;
        double event_seconds = 0.0;
        double tick_cps = 0.0;
        double event_cps = 0.0;
        double speedup = 0.0;
        bool bit_exact = false;
    };
    const std::vector<NocTopology> ev_topos =
        smoke ? std::vector<NocTopology>{NocTopology::Ideal,
                                         NocTopology::Hierarchical}
              : std::vector<NocTopology>{NocTopology::Ideal,
                                         NocTopology::FullXbar,
                                         NocTopology::Concentrated,
                                         NocTopology::Hierarchical};
    TraceParams ev_trace;
    ev_trace.pattern = AccessPattern::PrivateStream;
    ev_trace.privateLinesPerCta = 100000;
    ev_trace.writeFraction = 0.0;
    ev_trace.memInstrsPerWarp = smoke ? 500 : 2000;
    ev_trace.computePerMem = 0;
    ev_trace.seed = 3;
    const std::vector<KernelInfo> ev_kernels{
        makeSyntheticKernel("idle", ev_trace, 1, 1)};
    std::vector<EventTopoRow> ev_rows;
    for (const NocTopology topo : ev_topos) {
        SimConfig ev_cfg = cfg;
        ev_cfg.topology = topo;
        ev_cfg.idealNocLatency = 200;
        ev_cfg.llcMissLatency = 100;
        ev_cfg.l1Latency = 100;
        ev_cfg.maxCycles = smoke ? 250000 : 2000000;
        RunResult ev_results[2];
        double ev_walls[2];
        for (int m = 0; m < 2; ++m) {
            SimConfig c = ev_cfg;
            c.simMode = m == 0 ? SimMode::Tick : SimMode::Event;
            ev_walls[m] = wallSeconds([&]() {
                GpuSystem gpu(c);
                gpu.setWorkload(0, ev_kernels);
                ev_results[m] = gpu.run();
            });
        }
        EventTopoRow row;
        row.topo = topo;
        row.cycles = ev_results[0].cycles;
        row.tick_seconds = ev_walls[0];
        row.event_seconds = ev_walls[1];
        row.tick_cps =
            static_cast<double>(ev_results[0].cycles) / ev_walls[0];
        row.event_cps =
            static_cast<double>(ev_results[1].cycles) / ev_walls[1];
        row.speedup = ev_walls[0] / ev_walls[1];
        row.bit_exact = identicalResults(ev_results[0], ev_results[1]);
        ev_rows.push_back(row);
        std::printf("event core (idle-heavy, noc=%s, %llu cycles): "
                    "tick %.3f s (%.0f cycles/s), event %.3f s "
                    "(%.0f cycles/s), %.1fx, bit-exact: %s\n",
                    topologyName(topo).c_str(),
                    static_cast<unsigned long long>(row.cycles),
                    row.tick_seconds, row.tick_cps, row.event_seconds,
                    row.event_cps, row.speedup,
                    row.bit_exact ? "yes" : "NO");
    }

    // ---- phase 1f: serving throughput (tick vs event) -------------
    // The open-loop request driver appends work at runtime, so this
    // phase is the harness's only arrival-driven cost point: a
    // decode-heavy llm_inference mix (short prefill, long decode
    // chains hitting the Zipf-shared KV space) under both cycle
    // drivers. The drivers must agree bit for bit -- the driver
    // advertises exact next-arrival cycles and an event core that
    // lands anywhere else diverges here -- and the wall-clock pair
    // tracks what serving simulation costs relative to phase 1.
    LlmServingParams sv_params;
    sv_params.ratePerKCycle = 6.0;
    sv_params.tenants = 4;
    sv_params.maxBatch = 4;
    sv_params.totalRequests = smoke ? 8 : 24;
    sv_params.ctxTokens = 32;
    sv_params.decodeTokens = 32;
    sv_params.dModel = smoke ? 256 : 512;
    sv_params.layers = smoke ? 2 : 4;
    sv_params.seed = 9;
    SimConfig sv_cfg = cfg;
    sv_cfg.maxCycles = smoke ? 120000 : 400000;
    RunResult sv_results[2];
    double sv_walls[2];
    for (int m = 0; m < 2; ++m) {
        SimConfig c = sv_cfg;
        c.simMode = m == 0 ? SimMode::Tick : SimMode::Event;
        sv_walls[m] = wallSeconds([&]() {
            GpuSystem gpu(c);
            gpu.setProgram(0, makeLlmInferenceProgram(sv_params));
            sv_results[m] = gpu.run();
        });
    }
    const bool sv_bit_exact =
        identicalResults(sv_results[0], sv_results[1]);
    const double sv_tick_cps =
        static_cast<double>(sv_results[0].cycles) / sv_walls[0];
    const double sv_event_cps =
        static_cast<double>(sv_results[1].cycles) / sv_walls[1];
    std::printf("serving (decode-heavy, %llu/%u requests, %llu "
                "cycles): tick %.3f s (%.0f cycles/s), event %.3f s "
                "(%.0f cycles/s), bit-exact: %s\n",
                static_cast<unsigned long long>(
                    sv_results[0].requestsCompleted),
                sv_params.totalRequests,
                static_cast<unsigned long long>(sv_results[0].cycles),
                sv_walls[0], sv_tick_cps, sv_walls[1], sv_event_cps,
                sv_bit_exact ? "yes" : "NO");

    // ---- phase 2: fig11 sweep at 1/2/4/8 threads ------------------
    std::vector<SweepPoint> points;
    if (smoke) {
        pushPolicyTriple(points, cfg, WorkloadSuite::byName("AN"));
        pushPolicyTriple(points, cfg, WorkloadSuite::byName("LUD"));
    } else {
        for (const WorkloadSpec &spec : WorkloadSuite::all())
            pushPolicyTriple(points, cfg, spec);
    }

    std::vector<unsigned> thread_counts =
        smoke ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4, 8};
    const unsigned extra =
        static_cast<unsigned>(args.getUint("threads", 0));
    if (extra != 0 &&
        std::find(thread_counts.begin(), thread_counts.end(),
                  extra) == thread_counts.end())
        thread_counts.push_back(extra);

    // Thread-scaling ratios are only meaningful when the host can
    // actually run workers in parallel: on a single-hardware-thread
    // box every count > 1 measures oversubscription, not scaling, so
    // the ratios are annotated here and skipped in the JSON.
    const unsigned hw_threads = std::thread::hardware_concurrency();
    const bool scaling_meaningful = hw_threads > 1;
    std::vector<double> walls;
    std::vector<RunResult> reference;
    bool deterministic = true;
    for (const unsigned t : thread_counts) {
        const SweepRunner runner(t);
        std::vector<RunResult> results;
        const double wall = wallSeconds(
            [&]() { results = runner.run(points); });
        walls.push_back(wall);
        if (reference.empty()) {
            reference = std::move(results);
        } else {
            for (std::size_t i = 0; i < points.size(); ++i) {
                if (!identicalResults(reference[i], results[i])) {
                    deterministic = false;
                    std::fprintf(stderr,
                                 "NONDETERMINISM: point %zu (%s) "
                                 "differs at %u threads\n",
                                 i, points[i].label.c_str(), t);
                }
            }
        }
        if (scaling_meaningful)
            std::printf("fig11 sweep (%zu points) @ %u threads: "
                        "%.2f s (%.2fx vs 1 thread)\n",
                        points.size(), t, wall,
                        walls.front() / wall);
        else
            std::printf("fig11 sweep (%zu points) @ %u threads: "
                        "%.2f s (scaling n/a: 1 hardware thread)\n",
                        points.size(), t, wall);
    }

    // ---- emit JSON ------------------------------------------------
    std::ofstream out(out_path);
    out << "{\n";
    out << "  \"bench\": \"core\",\n";
    out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    out << "  \"hardware_threads\": " << hw_threads << ",\n";
    out << "  \"core\": {\n";
    out << "    \"simulated_cycles\": " << core_cycles << ",\n";
    out << "    \"instructions\": " << core_instrs << ",\n";
    out << "    \"wall_seconds\": " << core_wall << ",\n";
    out << "    \"cycles_per_sec\": " << cycles_per_sec << ",\n";
    out << "    \"instrs_per_sec\": " << instrs_per_sec << "\n";
    out << "  },\n";
    out << "  \"dram_bound\": {\n";
    out << "    \"simulated_cycles\": " << dram_cycles << ",\n";
    out << "    \"dram_accesses\": " << dram_accesses << ",\n";
    out << "    \"wall_seconds\": " << dram_wall << ",\n";
    out << "    \"cycles_per_sec\": " << dram_cycles_per_sec << "\n";
    out << "  },\n";
    out << "  \"timeline_overhead\": {\n";
    out << "    \"off_seconds\": " << tl_walls[0] << ",\n";
    out << "    \"null_sink_seconds\": " << tl_walls[1] << ",\n";
    out << "    \"file_sink_seconds\": " << tl_walls[2] << ",\n";
    out << "    \"null_sink_overhead_pct\": " << tl_null_pct << ",\n";
    out << "    \"file_sink_overhead_pct\": " << tl_file_pct << ",\n";
    out << "    \"bit_exact\": " << (tl_bit_exact ? "true" : "false")
        << "\n";
    out << "  },\n";
    out << "  \"checkpoint_overhead\": {\n";
    out << "    \"off_seconds\": " << ck_walls[0] << ",\n";
    out << "    \"every_cycles\": " << ck_on.checkpointEvery << ",\n";
    out << "    \"on_seconds\": " << ck_walls[1] << ",\n";
    out << "    \"overhead_pct\": " << ck_pct << ",\n";
    out << "    \"bit_exact\": " << (ck_bit_exact ? "true" : "false")
        << "\n";
    out << "  },\n";
    out << "  \"event_mode\": {\n";
    for (std::size_t i = 0; i < ev_rows.size(); ++i) {
        const EventTopoRow &r = ev_rows[i];
        out << "    \"" << topologyName(r.topo) << "\": {\n";
        out << "      \"simulated_cycles\": " << r.cycles << ",\n";
        out << "      \"tick_seconds\": " << r.tick_seconds << ",\n";
        out << "      \"event_seconds\": " << r.event_seconds
            << ",\n";
        out << "      \"tick_cycles_per_sec\": " << r.tick_cps
            << ",\n";
        out << "      \"event_cycles_per_sec\": " << r.event_cps
            << ",\n";
        out << "      \"speedup\": " << r.speedup << ",\n";
        out << "      \"bit_exact\": "
            << (r.bit_exact ? "true" : "false") << "\n";
        out << "    }" << (i + 1 < ev_rows.size() ? "," : "")
            << "\n";
    }
    out << "  },\n";
    out << "  \"serving\": {\n";
    out << "    \"simulated_cycles\": " << sv_results[0].cycles
        << ",\n";
    out << "    \"requests_completed\": "
        << sv_results[0].requestsCompleted << ",\n";
    out << "    \"req_lat_p50\": " << sv_results[0].reqLatencyP50
        << ",\n";
    out << "    \"tick_seconds\": " << sv_walls[0] << ",\n";
    out << "    \"event_seconds\": " << sv_walls[1] << ",\n";
    out << "    \"tick_cycles_per_sec\": " << sv_tick_cps << ",\n";
    out << "    \"event_cycles_per_sec\": " << sv_event_cps << ",\n";
    out << "    \"bit_exact\": " << (sv_bit_exact ? "true" : "false")
        << "\n";
    out << "  },\n";
    out << "  \"fig11_sweep\": {\n";
    out << "    \"points\": " << points.size() << ",\n";
    out << "    \"hardware_threads\": " << hw_threads << ",\n";
    out << "    \"wall_seconds\": {";
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
        out << (i == 0 ? "" : ", ") << "\"" << thread_counts[i]
            << "\": " << walls[i];
    }
    out << "},\n";
    if (scaling_meaningful) {
        out << "    \"speedup\": {";
        for (std::size_t i = 0; i < thread_counts.size(); ++i) {
            out << (i == 0 ? "" : ", ") << "\"" << thread_counts[i]
                << "\": " << walls.front() / walls[i];
        }
        out << "},\n";
    } else {
        out << "    \"speedup\": null,\n";
        out << "    \"speedup_note\": \"skipped: 1 hardware thread; "
               "multi-thread wall-clock ratios would measure "
               "oversubscription, not scaling\",\n";
    }
    out << "    \"deterministic\": "
        << (deterministic ? "true" : "false") << "\n";
    out << "  }\n";
    out << "}\n";
    out.close();
    std::printf("wrote %s\n", out_path.c_str());

    args.warnUnused();
    if (!deterministic) {
        std::fprintf(stderr,
                     "FAIL: multi-threaded sweep results differ from "
                     "the single-threaded reference\n");
        return 1;
    }
    if (!tl_bit_exact) {
        std::fprintf(stderr,
                     "FAIL: timeline observation perturbed the "
                     "simulation (results differ with sinks on)\n");
        return 1;
    }
    if (!ck_bit_exact) {
        std::fprintf(stderr,
                     "FAIL: periodic checkpointing perturbed the "
                     "simulation (results differ with "
                     "checkpoint_every on)\n");
        return 1;
    }
    if (!sv_bit_exact) {
        std::fprintf(stderr,
                     "FAIL: sim_mode=event diverged from the tick "
                     "loop on the open-loop serving run (request "
                     "driver arrival advertisement)\n");
        return 1;
    }
    for (const EventTopoRow &r : ev_rows) {
        if (!r.bit_exact) {
            std::fprintf(stderr,
                         "FAIL: sim_mode=event diverged from the "
                         "tick loop on the idle-heavy microbenchmark "
                         "(noc=%s)\n", topologyName(r.topo).c_str());
            return 1;
        }
        if (r.speedup < 1.0) {
            std::fprintf(stderr,
                         "FAIL: sim_mode=event is slower than the "
                         "tick loop on the idle-heavy microbenchmark "
                         "(noc=%s, %.2fx)\n",
                         topologyName(r.topo).c_str(), r.speedup);
            return 1;
        }
    }
    return 0;
}
