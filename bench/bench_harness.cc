/**
 * @file
 * Core performance harness: measures the simulator's own speed and
 * the sweep engine's thread scaling, and emits BENCH_core.json for
 * the performance trajectory (docs/performance.md).
 *
 * Phases:
 *   1. core throughput -- representative single runs on one thread:
 *      simulated cycles/sec and instructions/sec of the cycle core.
 *   2. fig11 sweep scaling -- the Figure-11 grid (workloads x
 *      {shared, private, adaptive}) executed at 1/2/4/8 threads;
 *      reports wall clock per sweep and speedup vs 1 thread.
 *
 * Every multi-threaded sweep is compared field-by-field against the
 * single-threaded reference (identicalResults); any mismatch is
 * nondeterminism and fails the harness (exit 1). `smoke=1` runs a
 * reduced grid on {1, 2} threads for CI.
 *
 * Keys: out=BENCH_core.json  smoke=1 (or `--smoke`)  threads (extra
 * count to probe)
 * plus the usual SimConfig overrides (see bench_util.hh).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

namespace
{

double
wallSeconds(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    bool smoke = args.getBool("smoke", false);
    for (const std::string &pos : args.positionals())
        smoke = smoke || pos == "--smoke" || pos == "smoke";
    const std::string out_path =
        args.getString("out", "BENCH_core.json");

    SimConfig cfg = benchConfig(args);
    if (smoke) {
        cfg.maxCycles /= 4;
        cfg.profileLen /= 4;
    }

    // ---- phase 1: core throughput (single runs, one thread) -------
    const std::vector<std::string> core_apps =
        smoke ? std::vector<std::string>{"AN", "LUD"}
              : std::vector<std::string>{"AN", "LUD", "BP", "MM"};
    std::uint64_t core_cycles = 0;
    std::uint64_t core_instrs = 0;
    const double core_wall = wallSeconds([&]() {
        for (const std::string &name : core_apps) {
            const RunResult r = runWorkload(
                cfg, WorkloadSuite::byName(name),
                LlcPolicy::Adaptive);
            core_cycles += r.cycles;
            core_instrs += r.instructions;
        }
    });
    const double cycles_per_sec =
        static_cast<double>(core_cycles) / core_wall;
    const double instrs_per_sec =
        static_cast<double>(core_instrs) / core_wall;
    std::printf("core: %llu cycles, %llu instrs in %.2f s "
                "(%.0f cycles/s, %.0f instrs/s)\n",
                static_cast<unsigned long long>(core_cycles),
                static_cast<unsigned long long>(core_instrs),
                core_wall, cycles_per_sec, instrs_per_sec);

    // ---- phase 2: fig11 sweep at 1/2/4/8 threads ------------------
    std::vector<SweepPoint> points;
    if (smoke) {
        pushPolicyTriple(points, cfg, WorkloadSuite::byName("AN"));
        pushPolicyTriple(points, cfg, WorkloadSuite::byName("LUD"));
    } else {
        for (const WorkloadSpec &spec : WorkloadSuite::all())
            pushPolicyTriple(points, cfg, spec);
    }

    std::vector<unsigned> thread_counts =
        smoke ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4, 8};
    const unsigned extra =
        static_cast<unsigned>(args.getUint("threads", 0));
    if (extra != 0 &&
        std::find(thread_counts.begin(), thread_counts.end(),
                  extra) == thread_counts.end())
        thread_counts.push_back(extra);

    std::vector<double> walls;
    std::vector<RunResult> reference;
    bool deterministic = true;
    for (const unsigned t : thread_counts) {
        const SweepRunner runner(t);
        std::vector<RunResult> results;
        const double wall = wallSeconds(
            [&]() { results = runner.run(points); });
        walls.push_back(wall);
        if (reference.empty()) {
            reference = std::move(results);
        } else {
            for (std::size_t i = 0; i < points.size(); ++i) {
                if (!identicalResults(reference[i], results[i])) {
                    deterministic = false;
                    std::fprintf(stderr,
                                 "NONDETERMINISM: point %zu (%s) "
                                 "differs at %u threads\n",
                                 i, points[i].label.c_str(), t);
                }
            }
        }
        std::printf("fig11 sweep (%zu points) @ %u threads: %.2f s "
                    "(%.2fx vs 1 thread)\n",
                    points.size(), t, wall, walls.front() / wall);
    }

    // ---- emit JSON ------------------------------------------------
    std::ofstream out(out_path);
    out << "{\n";
    out << "  \"bench\": \"core\",\n";
    out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    out << "  \"hardware_threads\": "
        << std::thread::hardware_concurrency() << ",\n";
    out << "  \"core\": {\n";
    out << "    \"simulated_cycles\": " << core_cycles << ",\n";
    out << "    \"instructions\": " << core_instrs << ",\n";
    out << "    \"wall_seconds\": " << core_wall << ",\n";
    out << "    \"cycles_per_sec\": " << cycles_per_sec << ",\n";
    out << "    \"instrs_per_sec\": " << instrs_per_sec << "\n";
    out << "  },\n";
    out << "  \"fig11_sweep\": {\n";
    out << "    \"points\": " << points.size() << ",\n";
    out << "    \"wall_seconds\": {";
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
        out << (i == 0 ? "" : ", ") << "\"" << thread_counts[i]
            << "\": " << walls[i];
    }
    out << "},\n";
    out << "    \"speedup\": {";
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
        out << (i == 0 ? "" : ", ") << "\"" << thread_counts[i]
            << "\": " << walls.front() / walls[i];
    }
    out << "},\n";
    out << "    \"deterministic\": "
        << (deterministic ? "true" : "false") << "\n";
    out << "  }\n";
    out << "}\n";
    out.close();
    std::printf("wrote %s\n", out_path.c_str());

    args.warnUnused();
    if (!deterministic) {
        std::fprintf(stderr,
                     "FAIL: multi-threaded sweep results differ from "
                     "the single-threaded reference\n");
        return 1;
    }
    return 0;
}
