/**
 * @file
 * Ablation: accuracy of the section-4.4 decision models.
 *
 * For a representative subset of workloads, compares the profiler's
 * shared-mode predictions (ATD private miss rate, LSP, bandwidth
 * model) against ground truth measured by actually running the
 * private organization, and reports which rule drove each decision.
 */

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig base = benchConfig(args);
    const SweepRunner runner = benchRunner(args);

    const char *const names[] = {"LUD", "GEMM", "BP", "AN",
                                 "NN",  "MM",   "BS", "VA"};
    constexpr std::size_t kApps = sizeof(names) / sizeof(names[0]);

    // Per workload: adaptive (capturing the profile snapshot),
    // private and shared ground-truth runs.
    std::vector<SweepPoint> points;
    std::vector<ProfileSnapshot> snaps(kApps);
    for (std::size_t i = 0; i < kApps; ++i) {
        const WorkloadSpec &spec = WorkloadSuite::byName(names[i]);
        SweepPoint adaptive =
            policyPoint(base, spec, LlcPolicy::Adaptive);
        ProfileSnapshot *out = &snaps[i];
        adaptive.post = [out](GpuSystem &gpu, RunResult &) {
            *out = gpu.llc().lastSnapshot();
        };
        points.push_back(std::move(adaptive));
        points.push_back(
            policyPoint(base, spec, LlcPolicy::ForcePrivate));
        points.push_back(
            policyPoint(base, spec, LlcPolicy::ForceShared));
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Ablation: profiler prediction accuracy (section "
                "4.4 models)\n\n");
    std::printf("| app | class | miss_s meas | miss_p pred | miss_p "
                "meas | LSP_s | LSP_p pred | decision | rule |\n");
    printRule(9);

    for (std::size_t i = 0; i < kApps; ++i) {
        const WorkloadSpec &spec = WorkloadSuite::byName(names[i]);
        const RunResult &ra = results[3 * i];
        const RunResult &rp = results[3 * i + 1];
        const RunResult &rs = results[3 * i + 2];
        const ProfileSnapshot &snap = snaps[i];

        const char *rule = ra.llcCtrl.rule1Fires > 0 ? "#1"
            : ra.llcCtrl.rule2Fires > 0              ? "#2"
                                                     : "-";
        std::printf("| %-5s | %-16s | %.3f | %.3f | %.3f | %4.1f | "
                    "%4.1f | %-7s | %s |\n",
                    spec.abbr.c_str(),
                    workloadClassName(spec.klass).c_str(),
                    rs.llcReadMissRate, snap.privateMissRate,
                    rp.llcReadMissRate, snap.sharedLsp,
                    snap.privateLsp,
                    ra.llcCtrl.decisionsPrivate > 0 ? "private"
                                                    : "shared",
                    rule);
    }
    std::printf("\nA decision is correct when the chosen organization "
                "matches the class (private-friendly -> private, "
                "shared-friendly -> shared, neutral -> private for "
                "power).\n");
    args.warnUnused();
    return 0;
}
