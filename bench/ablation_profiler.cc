/**
 * @file
 * Ablation: accuracy of the section-4.4 decision models.
 *
 * For a representative subset of workloads, compares the profiler's
 * shared-mode predictions (ATD private miss rate, LSP, bandwidth
 * model) against ground truth measured by actually running the
 * private organization, and reports which rule drove each decision.
 */

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig base = benchConfig(args);

    std::printf("# Ablation: profiler prediction accuracy (section "
                "4.4 models)\n\n");
    std::printf("| app | class | miss_s meas | miss_p pred | miss_p "
                "meas | LSP_s | LSP_p pred | decision | rule |\n");
    printRule(9);

    for (const char *name :
         {"LUD", "GEMM", "BP", "AN", "NN", "MM", "BS", "VA"}) {
        const WorkloadSpec &spec = WorkloadSuite::byName(name);

        // Adaptive run exposes the last profile snapshot + decision.
        SimConfig cfg = base;
        cfg.llcPolicy = LlcPolicy::Adaptive;
        GpuSystem gpu(cfg);
        gpu.setWorkload(0,
                        WorkloadSuite::buildKernels(spec, cfg.seed));
        const RunResult ra = gpu.run();
        const ProfileSnapshot snap = gpu.llc().lastSnapshot();

        // Ground truth under the private organization.
        const RunResult rp =
            runWorkload(base, spec, LlcPolicy::ForcePrivate);
        const RunResult rs =
            runWorkload(base, spec, LlcPolicy::ForceShared);

        const char *rule = ra.llcCtrl.rule1Fires > 0 ? "#1"
            : ra.llcCtrl.rule2Fires > 0              ? "#2"
                                                     : "-";
        std::printf("| %-5s | %-16s | %.3f | %.3f | %.3f | %4.1f | "
                    "%4.1f | %-7s | %s |\n",
                    spec.abbr.c_str(),
                    workloadClassName(spec.klass).c_str(),
                    rs.llcReadMissRate, snap.privateMissRate,
                    rp.llcReadMissRate, snap.sharedLsp,
                    snap.privateLsp,
                    ra.llcCtrl.decisionsPrivate > 0 ? "private"
                                                    : "shared",
                    rule);
    }
    std::printf("\nA decision is correct when the chosen organization "
                "matches the class (private-friendly -> private, "
                "shared-friendly -> shared, neutral -> private for "
                "power).\n");
    args.warnUnused();
    return 0;
}
