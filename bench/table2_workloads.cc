/**
 * @file
 * Table 2: the benchmark suite -- abbreviation, full name, shared
 * footprint, kernel count and classification, plus the synthetic
 * substitution parameters used to model each one.
 */

#include <set>

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

namespace
{

const char *
patternName(AccessPattern p)
{
    switch (p) {
      case AccessPattern::Broadcast:
        return "broadcast";
      case AccessPattern::ZipfShared:
        return "zipf-shared";
      case AccessPattern::TiledShared:
        return "tiled-shared";
      case AccessPattern::PrivateStream:
        return "private-stream";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    (void)args;

    std::printf("# Table 2: GPU benchmarks (synthetic stand-ins)\n\n");
    std::printf("| abbr | benchmark | shared [MB] | kernels "
                "(paper/sim) | class | pattern | shared frac | "
                "compute/mem |\n");
    printRule(8);
    for (const WorkloadSpec &s : WorkloadSuite::all()) {
        std::printf("| %-5s | %-18s | %6.3f | %2u / %u | %-16s | "
                    "%-14s | %.2f | %u |\n",
                    s.abbr.c_str(), s.fullName.c_str(), s.sharedMb,
                    s.paperKernels, s.simKernels,
                    workloadClassName(s.klass).c_str(),
                    patternName(s.trace.pattern),
                    s.trace.sharedFraction, s.trace.computePerMem);
    }

    std::printf("\nMeasured shared-region coverage (1M generator "
                "draws each):\n\n");
    std::printf("| abbr | configured lines | drawn distinct | "
                "coverage |\n");
    printRule(4);
    for (const WorkloadSpec &s : WorkloadSuite::all()) {
        const auto kernels = WorkloadSuite::buildKernels(s, 1);
        auto gen = kernels[0].makeGen(0, 0);
        std::set<Addr> distinct;
        WarpInstr wi;
        Cycle c = 0;
        // Multiple generator instances mimic many warps.
        for (int w = 0; w < 64; ++w) {
            auto g = kernels[0].makeGen(static_cast<CtaId>(w / 8),
                                        w % 8);
            while (g->nextInstr(wi, c)) {
                c += 3;
                if (!wi.isWrite &&
                    wi.addrs[0] < s.trace.sharedBase +
                            s.trace.sharedLines)
                    distinct.insert(wi.addrs[0]);
            }
        }
        std::printf("| %-5s | %8llu | %8zu | %5.1f%% |\n",
                    s.abbr.c_str(),
                    static_cast<unsigned long long>(
                        s.trace.sharedLines),
                    distinct.size(),
                    100.0 * static_cast<double>(distinct.size()) /
                        static_cast<double>(s.trace.sharedLines));
    }
    return 0;
}
