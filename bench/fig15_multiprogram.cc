/**
 * @file
 * Figure 15: multi-program system throughput (STP).
 *
 * All 30 two-program combinations of a shared-cache-friendly and a
 * private-cache-friendly benchmark co-execute, each owning half the
 * SMs of every cluster (paper Fig 9). Under the adaptive LLC the
 * shared-friendly app keeps a shared view while the private-friendly
 * app gets a private view; the baseline runs both shared.
 *
 *   STP = sum_i IPC_i(together) / IPC_i(alone, shared LLC)
 *
 * Paper shape: adaptive improves STP by ~8% on average.
 */

#include <algorithm>
#include <map>

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig base = benchConfig(args);
    const SweepRunner runner = benchRunner(args);
    const auto pairs = WorkloadSuite::multiprogramPairs();

    // Point grid: one isolated run per distinct app (full machine,
    // shared LLC), then two joint runs per pair (shared+shared and
    // shared+private).
    std::vector<SweepPoint> points;
    std::map<std::string, std::size_t> alone_idx;
    for (const auto &[sf, pf] : pairs) {
        for (const WorkloadSpec *spec : {&sf, &pf}) {
            if (alone_idx.count(spec->abbr) != 0)
                continue;
            alone_idx[spec->abbr] = points.size();
            points.push_back(
                policyPoint(base, *spec, LlcPolicy::ForceShared));
        }
    }
    const auto jointPoint = [&](const WorkloadSpec &a,
                                const WorkloadSpec &b, LlcPolicy pa,
                                LlcPolicy pb) {
        SweepPoint p;
        p.cfg = base;
        p.cfg.llcPolicy = pa;
        p.cfg.extraAppPolicies = {pb};
        p.apps = {a, b};
        p.label = a.abbr + "+" + b.abbr;
        return p;
    };
    const std::size_t joint_base = points.size();
    for (const auto &[sf, pf] : pairs) {
        points.push_back(jointPoint(sf, pf, LlcPolicy::ForceShared,
                                    LlcPolicy::ForceShared));
        points.push_back(jointPoint(sf, pf, LlcPolicy::ForceShared,
                                    LlcPolicy::ForcePrivate));
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Figure 15: multi-program STP, shared vs adaptive "
                "LLC (30 pairs)\n\n");
    std::printf("| pair | STP shared | STP adaptive | gain |\n");
    printRule(4);

    struct Row
    {
        std::string name;
        double stp_shared;
        double stp_adaptive;
    };
    std::vector<Row> rows;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto &[sf, pf] = pairs[i];
        const double a0 = results[alone_idx[sf.abbr]].ipc;
        const double a1 = results[alone_idx[pf.abbr]].ipc;
        const RunResult &s = results[joint_base + 2 * i];
        const RunResult &m = results[joint_base + 2 * i + 1];
        rows.push_back({sf.abbr + "+" + pf.abbr,
                        s.appIpc[0] / a0 + s.appIpc[1] / a1,
                        m.appIpc[0] / a0 + m.appIpc[1] / a1});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.stp_shared < b.stp_shared;
              });

    std::vector<double> gains;
    for (const Row &r : rows) {
        gains.push_back(r.stp_adaptive / r.stp_shared);
        std::printf("| %-11s | %.2f | %.2f | %+5.1f%% |\n",
                    r.name.c_str(), r.stp_shared, r.stp_adaptive,
                    (r.stp_adaptive / r.stp_shared - 1.0) * 100.0);
    }
    std::printf("\nAverage STP gain: %+.1f%% (paper: +8%%)\n",
                (mean(gains) - 1.0) * 100.0);
    args.warnUnused();
    return 0;
}
