/**
 * @file
 * Figure 15: multi-program system throughput (STP).
 *
 * All 30 two-program combinations of a shared-cache-friendly and a
 * private-cache-friendly benchmark co-execute, each owning half the
 * SMs of every cluster (paper Fig 9). Under the adaptive LLC the
 * shared-friendly app keeps a shared view while the private-friendly
 * app gets a private view; the baseline runs both shared.
 *
 *   STP = sum_i IPC_i(together) / IPC_i(alone, shared LLC)
 *
 * Paper shape: adaptive improves STP by ~8% on average.
 */

#include <algorithm>
#include <map>

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig base = benchConfig(args);

    // Isolated-run IPCs (full machine, shared LLC), cached per app.
    std::map<std::string, double> alone;
    auto alone_ipc = [&](const WorkloadSpec &spec) {
        auto it = alone.find(spec.abbr);
        if (it != alone.end())
            return it->second;
        const RunResult r =
            runWorkload(base, spec, LlcPolicy::ForceShared);
        alone[spec.abbr] = r.ipc;
        return r.ipc;
    };

    auto joint = [&](const WorkloadSpec &a, const WorkloadSpec &b,
                     LlcPolicy pa, LlcPolicy pb) {
        SimConfig cfg = base;
        cfg.llcPolicy = pa;
        cfg.extraAppPolicies = {pb};
        GpuSystem gpu(cfg);
        gpu.setWorkload(0,
                        WorkloadSuite::buildKernels(a, cfg.seed, 0));
        gpu.setWorkload(1,
                        WorkloadSuite::buildKernels(b, cfg.seed, 1));
        const RunResult r = gpu.run();
        return std::pair<double, double>(r.appIpc[0], r.appIpc[1]);
    };

    std::printf("# Figure 15: multi-program STP, shared vs adaptive "
                "LLC (30 pairs)\n\n");
    std::printf("| pair | STP shared | STP adaptive | gain |\n");
    printRule(4);

    struct Row
    {
        std::string name;
        double stp_shared;
        double stp_adaptive;
    };
    std::vector<Row> rows;
    for (const auto &[sf, pf] : WorkloadSuite::multiprogramPairs()) {
        const double a0 = alone_ipc(sf);
        const double a1 = alone_ipc(pf);
        const auto [s0, s1] = joint(sf, pf, LlcPolicy::ForceShared,
                                    LlcPolicy::ForceShared);
        const auto [m0, m1] = joint(sf, pf, LlcPolicy::ForceShared,
                                    LlcPolicy::ForcePrivate);
        rows.push_back({sf.abbr + "+" + pf.abbr,
                        s0 / a0 + s1 / a1, m0 / a0 + m1 / a1});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.stp_shared < b.stp_shared;
              });

    std::vector<double> gains;
    for (const Row &r : rows) {
        gains.push_back(r.stp_adaptive / r.stp_shared);
        std::printf("| %-11s | %.2f | %.2f | %+5.1f%% |\n",
                    r.name.c_str(), r.stp_shared, r.stp_adaptive,
                    (r.stp_adaptive / r.stp_shared - 1.0) * 100.0);
    }
    std::printf("\nAverage STP gain: %+.1f%% (paper: +8%%)\n",
                (mean(gains) - 1.0) * 100.0);
    args.warnUnused();
    return 0;
}
