/**
 * @file
 * Figure 7: GPU crossbar NoC design-space exploration.
 *
 * Design points are paired by bisection bandwidth:
 *   BW   : Full-Xbar @ 32 B  vs  H-Xbar @ 32 B
 *   BW/2 : C-Xbar(c=2) @ 32 B vs H-Xbar @ 16 B
 *   BW/4 : C-Xbar(c=4) @ 32 B vs H-Xbar @ 8 B
 *   BW/8 : C-Xbar(c=8) @ 32 B vs H-Xbar @ 4 B
 *
 * (a) performance (normalized IPC, harmonic mean over representative
 *     workloads), (b) active silicon area by component, (c) NoC power
 *     by component, all from the DSENT-class model.
 *
 * Paper shape: H-Xbar matches the full/concentrated crossbar's
 * performance at equal bisection bandwidth while cutting area by
 * 62-79% and power by up to 80%; C-Xbar@8 loses performance to
 * concentrator contention.
 */

#include "bench/bench_util.hh"
#include "power/noc_power.hh"

using namespace amsc;
using namespace amsc::bench;

namespace
{

struct DesignPoint
{
    const char *name;
    const char *group;
    NocTopology topo;
    std::uint32_t width;
    std::uint32_t conc;
};

const DesignPoint kPoints[] = {
    {"Full-Xbar", "BW", NocTopology::FullXbar, 32, 1},
    {"H-Xbar", "BW", NocTopology::Hierarchical, 32, 1},
    {"C-Xbar@2", "BW/2", NocTopology::Concentrated, 32, 2},
    {"H-Xbar/2", "BW/2", NocTopology::Hierarchical, 16, 1},
    {"C-Xbar@4", "BW/4", NocTopology::Concentrated, 32, 4},
    {"H-Xbar/4", "BW/4", NocTopology::Hierarchical, 8, 1},
    {"C-Xbar@8", "BW/8", NocTopology::Concentrated, 32, 8},
    {"H-Xbar/8", "BW/8", NocTopology::Hierarchical, 4, 1},
};

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig base = benchConfig(args);
    const SweepRunner runner = benchRunner(args);
    const NocPowerModel power_model;

    // Representative workloads: two per class.
    const std::vector<const WorkloadSpec *> specs = {
        &WorkloadSuite::byName("AN"),   &WorkloadSuite::byName("MM"),
        &WorkloadSuite::byName("GEMM"), &WorkloadSuite::byName("BP"),
        &WorkloadSuite::byName("VA"),   &WorkloadSuite::byName("HG"),
    };

    // 8 design points x 6 workloads, one sweep.
    std::vector<SweepPoint> points;
    for (const DesignPoint &dp : kPoints) {
        SimConfig cfg = base;
        cfg.topology = dp.topo;
        cfg.channelWidthBytes = dp.width;
        cfg.concentration = dp.conc;
        for (const WorkloadSpec *spec : specs)
            points.push_back(
                policyPoint(cfg, *spec, LlcPolicy::ForceShared));
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Figure 7: NoC design space (Full vs C-Xbar vs "
                "H-Xbar at equal bisection bandwidth)\n\n");
    std::printf("| group | design | norm. IPC | area [mm^2] "
                "(buf/xbar/link/other) | norm. power "
                "(buf/xbar/link/other) |\n");
    printRule(5);

    std::size_t idx = 0;
    double full_ipc = 0.0;
    double full_power = 0.0;
    for (const DesignPoint &dp : kPoints) {
        std::vector<double> ipcs;
        NocPowerResult pw{};
        NocBreakdown energy{};
        std::uint64_t cycles = 0;
        for (std::size_t w = 0; w < specs.size(); ++w) {
            const RunResult &r = results[idx++];
            ipcs.push_back(r.ipc);
            const NocPowerResult e =
                power_model.evaluate(r.nocActivity, r.cycles);
            energy.buffer += e.energyUj.buffer;
            energy.crossbar += e.energyUj.crossbar;
            energy.links += e.energyUj.links;
            energy.other += e.energyUj.other;
            cycles += r.cycles;
            pw = e; // keep last for area (identical geometry)
        }
        const double ipc = harmonicMean(ipcs);
        // Average power over the three runs.
        const double seconds =
            static_cast<double>(cycles) / (1.4e9);
        const double pw_total = energy.total() * 1e-6 / seconds * 1e3;
        if (dp.topo == NocTopology::FullXbar) {
            full_ipc = ipc;
            full_power = pw_total;
        }

        std::printf("| %-5s | %-9s | %.2f | %6.2f "
                    "(%.2f/%.2f/%.2f/%.2f) | %.2f "
                    "(%.2f/%.2f/%.2f/%.2f) |\n",
                    dp.group, dp.name, ipc / full_ipc,
                    pw.totalAreaMm2(), pw.areaMm2.buffer,
                    pw.areaMm2.crossbar, pw.areaMm2.links,
                    pw.areaMm2.other, pw_total / full_power,
                    energy.buffer / energy.total() * pw_total /
                        full_power,
                    energy.crossbar / energy.total() * pw_total /
                        full_power,
                    energy.links / energy.total() * pw_total /
                        full_power,
                    energy.other / energy.total() * pw_total /
                        full_power);
    }
    std::printf("\nPaper: H-Xbar ~= Full/C-Xbar IPC at equal "
                "bisection BW; 62-79%% NoC area reduction; up to 80%% "
                "lower power than C-Xbar.\n");
    args.warnUnused();
    return 0;
}
