/**
 * @file
 * Ablation: LLC replacement & bypass policy sensitivity.
 *
 * The paper's evaluation fixes the LLC at LRU and varies *where* data
 * is cached (shared vs private vs adaptive). Related work (Morpheus,
 * bandwidth-effective DRAM caches) shows GPU LLC conclusions can be
 * sensitive to the replacement/bypass choice instead, so this bench
 * sweeps one workload per class over every replacement policy
 * (lru/fifo/random/srrip/brrip/drrip) and both bypass modes, and
 * reports IPC relative to the lru/none baseline plus the LLC miss
 * rate and the fraction of fills the bypass dropped.
 *
 * Grid and order match scenarios/ablation_replacement.scn exactly
 * (tests/test_replacement.cc holds the expansion golden).
 */

#include <vector>

#include "bench/bench_util.hh"
#include "cache/replacement.hh"

using namespace amsc;
using namespace amsc::bench;

namespace
{

const ReplPolicy kRepls[] = {ReplPolicy::Lru,    ReplPolicy::Fifo,
                             ReplPolicy::Random, ReplPolicy::Srrip,
                             ReplPolicy::Brrip,  ReplPolicy::Drrip};
const BypassPolicy kBypasses[] = {BypassPolicy::None,
                                  BypassPolicy::Stream};

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig base = benchConfig(args);
    const SweepRunner runner = benchRunner(args);

    // One workload per class, same axis nesting as the scenario:
    // workload (slowest), llc_repl, llc_bypass (fastest).
    const char *workloads[] = {"LUD", "AN", "VA"};
    std::vector<SweepPoint> points;
    for (const char *wl : workloads) {
        const WorkloadSpec &spec = WorkloadSuite::byName(wl);
        for (const ReplPolicy repl : kRepls) {
            for (const BypassPolicy bypass : kBypasses) {
                SweepPoint p;
                p.cfg = base;
                p.cfg.llcRepl = repl;
                p.cfg.llcBypass = bypass;
                p.apps = {spec};
                p.label = spec.abbr + "/" + replPolicyName(repl) +
                    "/" + bypassPolicyName(bypass);
                points.push_back(std::move(p));
            }
        }
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Ablation: LLC replacement & bypass policy\n\n");
    std::printf("IPC normalized to the lru/none point of each "
                "workload; bypass%% = bypassed fills / LLC "
                "accesses.\n\n");
    std::size_t idx = 0;
    for (const char *wl : workloads) {
        const WorkloadSpec &spec = WorkloadSuite::byName(wl);
        std::printf("## %s (%s)\n\n", spec.abbr.c_str(),
                    className(spec.klass));
        std::printf("| policy | IPC vs lru | miss rate | bypass%% | "
                    "IPC+stream vs lru | miss+stream |\n");
        printRule(6);
        const double base_ipc = results[idx].ipc;
        for (const ReplPolicy repl : kRepls) {
            const RunResult &none = results[idx];
            const RunResult &stream = results[idx + 1];
            const double bp = stream.llcAccesses == 0
                ? 0.0
                : 100.0 * static_cast<double>(stream.llcBypasses) /
                    static_cast<double>(stream.llcAccesses);
            std::printf("| %s | %.3f | %.3f | %.1f | %.3f | %.3f |\n",
                        replPolicyName(repl).c_str(),
                        none.ipc / base_ipc, none.llcReadMissRate, bp,
                        stream.ipc / base_ipc,
                        stream.llcReadMissRate);
            idx += 2;
        }
        std::printf("\n");
    }
    std::printf("Spread of IPC across replacement policies is the "
                "\"how you replace\" axis; compare with the "
                "shared/private spread of fig11 (\"where you "
                "cache\").\n");
    args.warnUnused();
    return 0;
}
