/**
 * @file
 * Figure 11 (headline result): normalized IPC of shared, private and
 * adaptive memory-side LLCs across all 17 workloads.
 *
 * Paper shape: adaptive gains 28.1% on average (up to 38.1%) for the
 * private-cache-friendly class, is performance-neutral elsewhere, and
 * avoids the private organization's losses (-18.1% avg) on the
 * shared-cache-friendly class.
 */

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig cfg = benchConfig(args);
    const SweepRunner runner = benchRunner(args);

    // 17 workloads x {shared, private, adaptive}, one sweep.
    std::vector<SweepPoint> points;
    std::vector<PolicyTriple> triples;
    for (const WorkloadClass klass :
         {WorkloadClass::SharedFriendly, WorkloadClass::PrivateFriendly,
          WorkloadClass::Neutral}) {
        for (const WorkloadSpec &spec : WorkloadSuite::byClass(klass))
            triples.push_back(pushPolicyTriple(points, cfg, spec));
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Figure 11: shared vs private vs adaptive LLC "
                "(normalized IPC)\n\n");
    std::printf("| class | app | shared | private | adaptive | "
                "adaptive bar |\n");
    printRule(6);

    std::size_t widx = 0;
    std::vector<double> adaptive_gain_private_class;
    for (const WorkloadClass klass :
         {WorkloadClass::SharedFriendly, WorkloadClass::PrivateFriendly,
          WorkloadClass::Neutral}) {
        std::vector<double> priv_r;
        std::vector<double> adpt_r;
        for (const WorkloadSpec &spec : WorkloadSuite::byClass(klass)) {
            const PolicyTriple &t = triples[widx++];
            const RunResult &s = results[t.shared];
            const RunResult &p = results[t.priv];
            const RunResult &a = results[t.adaptive];
            const double rp = p.ipc / s.ipc;
            const double ra = a.ipc / s.ipc;
            priv_r.push_back(rp);
            adpt_r.push_back(ra);
            if (klass == WorkloadClass::PrivateFriendly)
                adaptive_gain_private_class.push_back(ra);
            std::printf("| %-22s | %-6s | 1.00 | %.2f | %.2f | %-24s "
                        "|\n",
                        className(klass), spec.abbr.c_str(), rp, ra,
                        bar(ra, 1.6).c_str());
        }
        std::printf("| %-22s | HM | 1.00 | %.2f | %.2f | |\n",
                    className(klass), harmonicMean(priv_r),
                    harmonicMean(adpt_r));
    }

    const double hm = harmonicMean(adaptive_gain_private_class);
    double peak = 0.0;
    for (const double g : adaptive_gain_private_class)
        peak = std::max(peak, g);
    std::printf("\nAdaptive vs shared, private-cache-friendly class: "
                "%+.1f%% average (paper: +28.1%%), %+.1f%% peak "
                "(paper: +38.1%%)\n",
                (hm - 1.0) * 100.0, (peak - 1.0) * 100.0);
    args.warnUnused();
    return 0;
}
