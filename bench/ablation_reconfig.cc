/**
 * @file
 * Ablation: reconfiguration and profiling overheads (section 4.1:
 * "a couple hundreds of cycles, a couple thousand at most"; profiling
 * overhead 0.8% on average).
 *
 * Sweeps the epoch length and the power-gating delay on a
 * private-cache-friendly workload and reports the reconfiguration
 * stall cycles, their share of runtime, and the IPC retained relative
 * to a statically private LLC.
 */

#include "bench/bench_util.hh"

using namespace amsc;
using namespace amsc::bench;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig base = benchConfig(args);
    const SweepRunner runner = benchRunner(args);
    const WorkloadSpec &spec = WorkloadSuite::byName("AN");

    const Cycle epochs[] = {25000u, 50000u, 100000u, 200000u};
    const Cycle delays[] = {10u, 30u, 100u, 300u};

    // One static-private reference + both sweeps, all concurrent.
    std::vector<SweepPoint> points;
    points.push_back(
        policyPoint(base, spec, LlcPolicy::ForcePrivate));
    for (const Cycle epoch : epochs) {
        SimConfig cfg = base;
        cfg.epochLen = epoch;
        cfg.profileLen = epoch / 40;
        points.push_back(policyPoint(cfg, spec, LlcPolicy::Adaptive));
    }
    for (const Cycle delay : delays) {
        SimConfig cfg = base;
        cfg.epochLen = 100000;
        cfg.gateDelay = delay;
        points.push_back(policyPoint(cfg, spec, LlcPolicy::Adaptive));
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);
    const RunResult &priv = results[0];

    std::printf("# Ablation: reconfiguration overhead (workload AN)"
                "\n\n");
    std::printf("## Epoch length sweep (profile = epoch/40)\n\n");
    std::printf("| epoch | transitions | stall cycles | stall/cycle "
                "%% | IPC vs static private |\n");
    printRule(5);
    std::size_t idx = 1;
    for (const Cycle epoch : epochs) {
        const RunResult &r = results[idx++];
        const std::uint64_t transitions =
            r.llcCtrl.transitionsToPrivate +
            r.llcCtrl.transitionsToShared;
        std::printf("| %6llu | %2llu | %6llu | %.2f%% | %.3f |\n",
                    static_cast<unsigned long long>(epoch),
                    static_cast<unsigned long long>(transitions),
                    static_cast<unsigned long long>(
                        r.llcCtrl.reconfigStallCycles),
                    100.0 *
                        static_cast<double>(
                            r.llcCtrl.reconfigStallCycles) /
                        static_cast<double>(r.cycles),
                    r.ipc / priv.ipc);
    }

    std::printf("\n## Power-gate delay sweep (epoch = 100000)\n\n");
    std::printf("| gate delay | stall cycles/transition |\n");
    printRule(2);
    for (const Cycle delay : delays) {
        const RunResult &r = results[idx++];
        const std::uint64_t transitions =
            r.llcCtrl.transitionsToPrivate +
            r.llcCtrl.transitionsToShared;
        std::printf("| %4llu | %.0f |\n",
                    static_cast<unsigned long long>(delay),
                    transitions == 0
                        ? 0.0
                        : static_cast<double>(
                              r.llcCtrl.reconfigStallCycles) /
                            static_cast<double>(transitions));
    }
    std::printf("\nPaper: transition costs hundreds to a couple "
                "thousand cycles; total profiling overhead ~0.8%%.\n");
    args.warnUnused();
    return 0;
}
