/**
 * @file
 * Figure 14: NoC energy under the adaptive LLC, normalized to a
 * shared LLC, for the private-cache-friendly and neutral workloads,
 * plus total system (GPU + DRAM) energy.
 *
 * Energy is compared per unit of work (per kilo-instruction), since
 * runs are fixed-horizon rather than fixed-work.
 *
 * Paper shape: power-gating the MC-routers in private mode cuts NoC
 * energy by 26.6% on average (up to 29.7%); total system energy drops
 * 6.1% on average (up to 27.2%) -- DRAM traffic rises under
 * write-through, but the speedup and NoC savings dominate.
 */

#include "bench/bench_util.hh"
#include "power/gpu_energy.hh"
#include "power/noc_power.hh"

using namespace amsc;
using namespace amsc::bench;

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig cfg = benchConfig(args);
    const SweepRunner runner = benchRunner(args);
    const NocPowerModel noc_model;
    const GpuEnergyModel gpu_model;

    std::vector<SweepPoint> points;
    for (const WorkloadClass klass :
         {WorkloadClass::PrivateFriendly, WorkloadClass::Neutral}) {
        for (const WorkloadSpec &spec : WorkloadSuite::byClass(klass)) {
            points.push_back(
                policyPoint(cfg, spec, LlcPolicy::ForceShared));
            points.push_back(
                policyPoint(cfg, spec, LlcPolicy::Adaptive));
        }
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Figure 14: NoC energy, adaptive vs shared LLC "
                "(per kilo-instruction)\n\n");
    std::printf("| class | app | NoC energy (buf/xbar/link/other) | "
                "system energy |\n");
    printRule(4);

    // Everything below derives from the collected RunResults alone.
    const auto evaluate = [&](const RunResult &r, NocBreakdown &bd,
                              double &sys_uj_per_ki) {
        const NocPowerResult e =
            noc_model.evaluate(r.nocActivity, r.cycles);
        const double ki =
            static_cast<double>(r.instructions) / 1000.0;
        bd.buffer = e.energyUj.buffer / ki;
        bd.crossbar = e.energyUj.crossbar / ki;
        bd.links = e.energyUj.links / ki;
        bd.other = e.energyUj.other / ki;
        GpuActivity act = r.gpuActivity;
        act.nocEnergyUj = e.totalEnergyUj();
        sys_uj_per_ki = gpu_model.evaluate(act).totalUj() / ki;
        return e.totalEnergyUj() / ki;
    };

    std::size_t idx = 0;
    std::vector<double> noc_savings;
    std::vector<double> sys_savings;
    for (const WorkloadClass klass :
         {WorkloadClass::PrivateFriendly, WorkloadClass::Neutral}) {
        for (const WorkloadSpec &spec : WorkloadSuite::byClass(klass)) {
            NocBreakdown bs{};
            NocBreakdown ba{};
            double sys_s = 0.0;
            double sys_a = 0.0;
            const double es = evaluate(results[idx++], bs, sys_s);
            const double ea = evaluate(results[idx++], ba, sys_a);
            noc_savings.push_back(1.0 - ea / es);
            sys_savings.push_back(1.0 - sys_a / sys_s);
            std::printf("| %-22s | %-6s | %.2f "
                        "(%.2f/%.2f/%.2f/%.2f) | %.2f |\n",
                        className(klass), spec.abbr.c_str(), ea / es,
                        ba.buffer / es, ba.crossbar / es,
                        ba.links / es, ba.other / es, sys_a / sys_s);
        }
    }
    std::printf("\nNoC energy saving: %.1f%% average (paper: 26.6%%, "
                "up to 29.7%%)\n",
                mean(noc_savings) * 100.0);
    std::printf("System energy saving: %.1f%% average (paper: 6.1%%, "
                "up to 27.2%%)\n",
                mean(sys_savings) * 100.0);
    args.warnUnused();
    return 0;
}
