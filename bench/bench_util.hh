/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench accepts SimConfig key=value overrides plus:
 *   max_cycles=N   simulated cycles per run (default 60000)
 *   quick=1        quarter-length runs for smoke testing
 *   threads=N      sweep worker threads (default: all cores, or
 *                  AMSC_SWEEP_THREADS)
 *
 * Benches build their whole (config, workload) grid as SweepPoints,
 * execute it on the SweepRunner thread pool, and print GitHub-
 * flavoured markdown tables plus ASCII bars from the order-stable
 * results, so the series can be compared against the paper's figures
 * directly. Results are bit-identical at any thread count.
 */

#ifndef AMSC_BENCH_BENCH_UTIL_HH
#define AMSC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/kvargs.hh"
#include "scenario/emit.hh"
#include "sim/gpu_system.hh"
#include "sim/sweep.hh"
#include "workloads/suite.hh"

namespace amsc::bench
{

/** Baseline bench configuration: Table 1 at reduced runtime. */
inline SimConfig
benchConfig(const KvArgs &args)
{
    SimConfig cfg;
    // Scaled run lengths: the profiling window and epoch shrink
    // together with the simulated horizon (paper: 50 K / 1 M at 1 B
    // instructions).
    cfg.maxCycles = 60000;
    cfg.profileLen = 5000;
    cfg.epochLen = 50000;
    cfg.applyKv(args);
    if (args.getBool("quick", false)) {
        cfg.maxCycles /= 4;
        cfg.profileLen /= 4;
    }
    return cfg;
}

/** Sweep executor honouring the bench-level `threads=N` override. */
inline SweepRunner
benchRunner(const KvArgs &args)
{
    return SweepRunner(
        static_cast<unsigned>(args.getUint("threads", 0)));
}

/**
 * Run the whole grid and additionally honour `json=FILE` / `csv=FILE`
 * overrides: every bench can dump its raw per-point metrics in the
 * scenario emitters' stable column format next to its table output.
 */
inline std::vector<RunResult>
runAndEmit(const KvArgs &args, const SweepRunner &runner,
           const std::vector<SweepPoint> &points)
{
    std::vector<RunResult> results = runner.run(points);
    scenario::maybeEmit(args, points, results);
    return results;
}

/** Sweep point: one workload under one LLC policy. */
inline SweepPoint
policyPoint(SimConfig cfg, const WorkloadSpec &spec, LlcPolicy policy)
{
    cfg.llcPolicy = policy;
    SweepPoint p;
    p.label = spec.abbr + "/" + llcPolicyName(policy);
    p.cfg = std::move(cfg);
    p.apps = {spec};
    return p;
}

/**
 * Indices of one workload's {shared, private, adaptive} sweep points
 * inside the grid they were pushed into.
 */
struct PolicyTriple
{
    std::size_t shared;
    std::size_t priv;
    std::size_t adaptive;
};

/**
 * Append shared/private/adaptive points for @p spec to @p points and
 * return their indices, so result consumption cannot drift from the
 * grid construction order.
 */
inline PolicyTriple
pushPolicyTriple(std::vector<SweepPoint> &points, const SimConfig &cfg,
                 const WorkloadSpec &spec)
{
    const PolicyTriple t{points.size(), points.size() + 1,
                         points.size() + 2};
    points.push_back(policyPoint(cfg, spec, LlcPolicy::ForceShared));
    points.push_back(policyPoint(cfg, spec, LlcPolicy::ForcePrivate));
    points.push_back(policyPoint(cfg, spec, LlcPolicy::Adaptive));
    return t;
}

/** Run one workload under one LLC policy (single-point shorthand). */
inline RunResult
runWorkload(SimConfig cfg, const WorkloadSpec &spec, LlcPolicy policy)
{
    return SweepRunner::runPoint(
        policyPoint(std::move(cfg), spec, policy));
}

/** Render a fixed-width ASCII bar for value in [0, max]. */
inline std::string
bar(double value, double max, int width = 24)
{
    if (max <= 0.0)
        max = 1.0;
    int n = static_cast<int>(value / max * width + 0.5);
    if (n < 0)
        n = 0;
    if (n > width)
        n = width;
    return std::string(static_cast<std::size_t>(n), '#');
}

/** Print a markdown table separator row of @p cols columns. */
inline void
printRule(int cols)
{
    for (int i = 0; i < cols; ++i)
        std::printf("|---");
    std::printf("|\n");
}

/** Pretty class name used in the figure groupings. */
inline const char *
className(WorkloadClass c)
{
    switch (c) {
      case WorkloadClass::SharedFriendly:
        return "shared cache friendly";
      case WorkloadClass::PrivateFriendly:
        return "private cache friendly";
      case WorkloadClass::Neutral:
        return "shared/private neutral";
    }
    return "?";
}

} // namespace amsc::bench

#endif // AMSC_BENCH_BENCH_UTIL_HH
