/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench accepts SimConfig key=value overrides plus:
 *   max_cycles=N   simulated cycles per run (default 60000)
 *   quick=1        quarter-length runs for smoke testing
 *
 * Benches print GitHub-flavoured markdown tables plus ASCII bars so
 * the series can be compared against the paper's figures directly.
 */

#ifndef AMSC_BENCH_BENCH_UTIL_HH
#define AMSC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/kvargs.hh"
#include "sim/gpu_system.hh"
#include "workloads/suite.hh"

namespace amsc::bench
{

/** Baseline bench configuration: Table 1 at reduced runtime. */
inline SimConfig
benchConfig(const KvArgs &args)
{
    SimConfig cfg;
    // Scaled run lengths: the profiling window and epoch shrink
    // together with the simulated horizon (paper: 50 K / 1 M at 1 B
    // instructions).
    cfg.maxCycles = 60000;
    cfg.profileLen = 5000;
    cfg.epochLen = 50000;
    cfg.applyKv(args);
    if (args.getBool("quick", false)) {
        cfg.maxCycles /= 4;
        cfg.profileLen /= 4;
    }
    return cfg;
}

/** Run one workload under one LLC policy. */
inline RunResult
runWorkload(SimConfig cfg, const WorkloadSpec &spec, LlcPolicy policy)
{
    cfg.llcPolicy = policy;
    GpuSystem gpu(cfg);
    gpu.setWorkload(0, WorkloadSuite::buildKernels(spec, cfg.seed));
    return gpu.run();
}

/** Render a fixed-width ASCII bar for value in [0, max]. */
inline std::string
bar(double value, double max, int width = 24)
{
    if (max <= 0.0)
        max = 1.0;
    int n = static_cast<int>(value / max * width + 0.5);
    if (n < 0)
        n = 0;
    if (n > width)
        n = width;
    return std::string(static_cast<std::size_t>(n), '#');
}

/** Print a markdown table separator row of @p cols columns. */
inline void
printRule(int cols)
{
    for (int i = 0; i < cols; ++i)
        std::printf("|---");
    std::printf("|\n");
}

/** Pretty class name used in the figure groupings. */
inline const char *
className(WorkloadClass c)
{
    switch (c) {
      case WorkloadClass::SharedFriendly:
        return "shared cache friendly";
      case WorkloadClass::PrivateFriendly:
        return "private cache friendly";
      case WorkloadClass::Neutral:
        return "shared/private neutral";
    }
    return "?";
}

} // namespace amsc::bench

#endif // AMSC_BENCH_BENCH_UTIL_HH
