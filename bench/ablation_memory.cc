/**
 * @file
 * Ablation: memory backend x scheduler x activation-spacing
 * sensitivity.
 *
 * The paper's evaluation fixes the memory side at GDDR5 + FR-FCFS
 * (Table 1). FUSE (STT-MRAM LLC) and the SCM DRAM-cache line of work
 * show GPU cache conclusions shift with the memory technology, so
 * this bench sweeps a shared-friendly and a neutral workload over
 * every `mem_backend` preset, every `mem_sched` policy and two tRRD
 * activation spacings, reporting IPC relative to the gddr5/fr_fcfs
 * baseline plus the DRAM-side fingerprints (row-hit rate, refreshes,
 * queue backpressure, drain batches).
 *
 * Grid and order match scenarios/ablation_memory.scn exactly
 * (tests/test_mem_policy.cc holds the expansion golden).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "mem/mem_backend.hh"
#include "mem/mem_scheduler.hh"

using namespace amsc;
using namespace amsc::bench;

namespace
{

const MemBackend kBackends[] = {MemBackend::Gddr5, MemBackend::Hbm2,
                                MemBackend::Scm};
const MemSched kScheds[] = {MemSched::FrFcfs, MemSched::Fcfs,
                            MemSched::WriteDrain};
const std::uint32_t kTrrds[] = {6, 24};

} // namespace

int
main(int argc, char **argv)
{
    const KvArgs args = KvArgs::parse(argc, argv);
    const SimConfig base = benchConfig(args);
    const SweepRunner runner = benchRunner(args);

    // Same axis nesting as the scenario: workload (slowest),
    // mem_backend, mem_sched, dram_trrd (fastest).
    const char *workloads[] = {"LUD", "VA"};
    std::vector<SweepPoint> points;
    for (const char *wl : workloads) {
        const WorkloadSpec &spec = WorkloadSuite::byName(wl);
        for (const MemBackend backend : kBackends) {
            for (const MemSched sched : kScheds) {
                for (const std::uint32_t trrd : kTrrds) {
                    SweepPoint p;
                    p.cfg = base;
                    applyMemBackend(p.cfg, backend);
                    p.cfg.memSched = sched;
                    p.cfg.dramTimings.tRRD = trrd;
                    p.apps = {spec};
                    p.label = spec.abbr + "/" +
                        memBackendName(backend) + "/" +
                        memSchedName(sched) + "/" +
                        std::to_string(trrd);
                    points.push_back(std::move(p));
                }
            }
        }
    }
    const std::vector<RunResult> results =
        runAndEmit(args, runner, points);

    std::printf("# Ablation: memory backend x scheduler x tRRD\n\n");
    std::printf("IPC normalized to the gddr5/fr_fcfs/6 point of each "
                "workload.\n\n");
    std::size_t idx = 0;
    for (const char *wl : workloads) {
        const WorkloadSpec &spec = WorkloadSuite::byName(wl);
        std::printf("## %s (%s)\n\n", spec.abbr.c_str(),
                    className(spec.klass));
        std::printf("| backend/sched/tRRD | IPC vs base | row-hit | "
                    "DRAM acc | refreshes | q-rejects | drains |\n");
        printRule(7);
        const double base_ipc = results[idx].ipc;
        for (const MemBackend backend : kBackends) {
            for (const MemSched sched : kScheds) {
                for (const std::uint32_t trrd : kTrrds) {
                    const RunResult &r = results[idx];
                    std::printf(
                        "| %s/%s/%u | %.3f | %.3f | %llu | %llu | "
                        "%llu | %llu |\n",
                        memBackendName(backend).c_str(),
                        memSchedName(sched).c_str(), trrd,
                        r.ipc / base_ipc, r.dramRowHitRate,
                        static_cast<unsigned long long>(
                            r.dramAccesses),
                        static_cast<unsigned long long>(
                            r.dramRefreshes),
                        static_cast<unsigned long long>(
                            r.dramQueueRejects),
                        static_cast<unsigned long long>(
                            r.dramWriteDrains));
                    ++idx;
                }
            }
        }
        std::printf("\n");
    }
    std::printf("The memory-technology axis composes with the "
                "paper's shared/private axis: compare the spread "
                "here with fig11 (\"where you cache\") and "
                "ablation_replacement (\"how you replace\").\n");
    args.warnUnused();
    return 0;
}
